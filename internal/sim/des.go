// Package sim provides the discrete-event simulator and the evaluation
// scenarios of §6.3: device pairs with asymmetric batteries transferring
// data until one side dies, compared against the Bluetooth and
// best-single-mode baselines (Figs. 15–18).
//
// The package has two layers. The scenario layer (scenario.go) answers
// the figures' questions with the chunked braid engine — fast enough for
// the full 10×10 device matrices. The event layer (this file and
// traffic.go) is a small discrete-event kernel used to drive packet-level
// mac.Sessions under realistic traffic in the examples and integration
// tests.
package sim

import (
	"container/heap"
	"fmt"

	"braidio/internal/units"
)

// Event is a scheduled callback.
type Event struct {
	// Time is the absolute simulation time the event fires at.
	Time units.Second
	// Fire runs the event. It may schedule further events.
	Fire func()

	index int // heap bookkeeping
	seq   int // FIFO tiebreak for simultaneous events
}

// eventQueue implements heap.Interface ordered by (Time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation kernel.
type Engine struct {
	now   units.Second
	queue eventQueue
	seq   int
	fired int
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() units.Second { return e.now }

// Fired returns how many events have run.
func (e *Engine) Fired() int { return e.fired }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at an absolute time, which must not be in the past.
func (e *Engine) At(t units.Second, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", float64(t), float64(e.now)))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &Event{Time: t, Fire: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn after a non-negative delay.
func (e *Engine) After(d units.Second, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", float64(d)))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event; canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.index >= len(e.queue) || e.queue[ev.index] != ev {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step fires the next event; it reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.index = -1
	e.now = ev.Time
	e.fired++
	ev.Fire()
	return true
}

// RunUntil fires events until the queue drains or the next event is
// after the deadline; the clock advances to at most the deadline.
func (e *Engine) RunUntil(deadline units.Second) {
	for len(e.queue) > 0 && e.queue[0].Time <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run fires events until the queue is empty or maxEvents have fired
// (guarding against runaway self-scheduling); it returns the number of
// events fired in this call.
func (e *Engine) Run(maxEvents int) int {
	fired := 0
	for fired < maxEvents && e.Step() {
		fired++
	}
	return fired
}
