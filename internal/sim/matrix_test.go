package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/linkcache"
	"braidio/internal/phy"
)

// TestMatrixGoldenCacheOnOff is the golden test for the scheduling-layer
// caches: at allocation tolerance 0 (the default) every cell of the
// Fig. 15 and Fig. 16 matrices must be bit-identical whether the link
// cache and the allocation memo are on (the default) or both forced off.
func TestMatrixGoldenCacheOnOff(t *testing.T) {
	m := phy.NewModel()
	devices := energy.Catalog

	type build func() (*Matrix, error)
	builds := map[string]build{
		"fig15-0.5m": func() (*Matrix, error) { return GainMatrixBluetooth(m, 0.5, devices) },
		"fig16-0.5m": func() (*Matrix, error) { return GainMatrixBestMode(m, 0.5, devices) },
		"fig15-3m":   func() (*Matrix, error) { return GainMatrixBluetooth(m, 3, devices) },
	}

	for name, f := range builds {
		on, err := f()
		if err != nil {
			t.Fatalf("%s cached: %v", name, err)
		}

		linkcache.SetEnabled(false)
		core.DefaultDisableAllocationMemo = true
		off, err := f()
		linkcache.SetEnabled(true)
		core.DefaultDisableAllocationMemo = false
		if err != nil {
			t.Fatalf("%s uncached: %v", name, err)
		}

		for r := range on.Cells {
			for c := range on.Cells[r] {
				if on.Cells[r][c] != off.Cells[r][c] {
					t.Errorf("%s cell [%d][%d]: cached %v != uncached %v (not bit-identical)",
						name, r, c, on.Cells[r][c], off.Cells[r][c])
				}
			}
		}
	}
}

// errBoom is the sentinel the worker-pool tests propagate.
var errBoom = errors.New("boom")

// TestBuildMatrixPropagatesErrors: a failing cell must surface through
// errors.Join with its context intact, and the matrix must be withheld.
func TestBuildMatrixPropagatesErrors(t *testing.T) {
	devices := energy.Catalog[:4]
	mat, err := buildMatrix(devices, func(tx, rx energy.Device) (float64, error) {
		if tx.Name == devices[2].Name && rx.Name == devices[1].Name {
			return 0, fmt.Errorf("cell %s→%s: %w", tx.Name, rx.Name, errBoom)
		}
		return 1, nil
	})
	if mat != nil {
		t.Error("matrix returned alongside an error")
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want wrapped errBoom", err)
	}
}

// TestBuildMatrixStopsDispatchOnError: after the first error the pool
// must stop handing out cells — only in-flight work may still complete.
func TestBuildMatrixStopsDispatchOnError(t *testing.T) {
	devices := energy.Catalog // 10×10 = 100 cells
	var calls atomic.Int64
	_, err := buildMatrix(devices, func(tx, rx energy.Device) (float64, error) {
		calls.Add(1)
		return 0, errBoom
	})
	if err == nil {
		t.Fatal("no error propagated")
	}
	// The dispatcher checks the failure flag before every send, so at
	// most the worker-pool depth of extra cells can run after the first
	// failure.
	if max := int64(2 * (runtime.GOMAXPROCS(0) + 1)); calls.Load() > max {
		t.Errorf("%d cells ran after instant failure, want ≤ %d", calls.Load(), max)
	}
}

// TestBuildMatrixBoundedConcurrency: the pool never runs more cells at
// once than GOMAXPROCS.
func TestBuildMatrixBoundedConcurrency(t *testing.T) {
	devices := energy.Catalog[:5]
	var inFlight, peak atomic.Int64
	_, err := buildMatrix(devices, func(tx, rx energy.Device) (float64, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		inFlight.Add(-1)
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if limit := int64(runtime.GOMAXPROCS(0)); peak.Load() > limit {
		t.Errorf("observed %d concurrent cells, limit %d", peak.Load(), limit)
	}
}

// TestBuildMatrixMatchesSequential: the pooled matrix equals a plain
// sequential computation of the same gain function.
func TestBuildMatrixMatchesSequential(t *testing.T) {
	devices := energy.Catalog[:4]
	f := func(tx, rx energy.Device) (float64, error) {
		return float64(tx.Capacity) / float64(rx.Capacity), nil
	}
	mat, err := buildMatrix(devices, f)
	if err != nil {
		t.Fatal(err)
	}
	for r, rx := range devices {
		for c, tx := range devices {
			want, _ := f(tx, rx)
			if mat.Cells[r][c] != want {
				t.Errorf("cell [%d][%d] = %v, want %v", r, c, mat.Cells[r][c], want)
			}
		}
	}
}
