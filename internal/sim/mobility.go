package sim

import (
	"fmt"

	"braidio/internal/rng"
	"braidio/internal/units"
)

// Walk is a one-dimensional mobility trace: the separation between the
// two endpoints as a function of time. The evaluation's Scenario 3
// (Fig. 18) sweeps static distances; walks extend that to the dynamic
// environments §4.2's fallback logic is designed for.
type Walk interface {
	// DistanceAt returns the separation at absolute time t ≥ 0.
	DistanceAt(t units.Second) units.Meter
}

// StaticWalk is a constant separation.
type StaticWalk units.Meter

// DistanceAt implements Walk.
func (s StaticWalk) DistanceAt(units.Second) units.Meter { return units.Meter(s) }

// LinearWalk moves from Start to End over Duration and stays there.
type LinearWalk struct {
	Start, End units.Meter
	Duration   units.Second
}

// DistanceAt implements Walk.
func (l LinearWalk) DistanceAt(t units.Second) units.Meter {
	if l.Duration <= 0 || t >= l.Duration {
		return l.End
	}
	if t <= 0 {
		return l.Start
	}
	f := float64(t / l.Duration)
	return l.Start + units.Meter(f)*(l.End-l.Start)
}

// RandomWaypoint is the classic mobility model restricted to the
// line-of-separation: pick a target distance uniformly in [Min, Max],
// move toward it at Speed, pause, repeat. Deterministic given its
// stream.
type RandomWaypoint struct {
	// Min and Max bound the separation.
	Min, Max units.Meter
	// Speed in m/s (walking ≈ 1.4).
	Speed float64
	// Pause at each waypoint.
	Pause units.Second

	stream   *rng.Stream
	segments []segment
}

type segment struct {
	start    units.Second
	duration units.Second
	from, to units.Meter
}

// NewRandomWaypoint validates and returns a walk starting at Min.
func NewRandomWaypoint(min, max units.Meter, speed float64, pause units.Second, stream *rng.Stream) *RandomWaypoint {
	if min <= 0 || max <= min {
		panic(fmt.Sprintf("sim: bad waypoint bounds [%v, %v]", float64(min), float64(max)))
	}
	if speed <= 0 || pause < 0 {
		panic(fmt.Sprintf("sim: bad waypoint dynamics speed=%v pause=%v", speed, float64(pause)))
	}
	if stream == nil {
		panic("sim: nil stream")
	}
	return &RandomWaypoint{Min: min, Max: max, Speed: speed, Pause: pause, stream: stream}
}

// DistanceAt implements Walk, extending the trace lazily and caching it
// so repeated queries are consistent.
func (w *RandomWaypoint) DistanceAt(t units.Second) units.Meter {
	if t < 0 {
		panic(fmt.Sprintf("sim: negative time %v", float64(t)))
	}
	for {
		for _, seg := range w.segments {
			if t >= seg.start && t < seg.start+seg.duration {
				if seg.duration == 0 {
					return seg.to
				}
				f := float64((t - seg.start) / seg.duration)
				return seg.from + units.Meter(f)*(seg.to-seg.from)
			}
		}
		w.extend()
	}
}

// extend appends one move segment and one pause segment.
func (w *RandomWaypoint) extend() {
	var start units.Second
	from := w.Min
	if n := len(w.segments); n > 0 {
		last := w.segments[n-1]
		start = last.start + last.duration
		from = last.to
	}
	target := w.Min + units.Meter(w.stream.Float64())*(w.Max-w.Min)
	dist := float64(target - from)
	if dist < 0 {
		dist = -dist
	}
	travel := units.Second(dist / w.Speed)
	if travel <= 0 {
		travel = 1e-9 // degenerate same-point waypoint
	}
	w.segments = append(w.segments,
		segment{start: start, duration: travel, from: from, to: target},
		segment{start: start + travel, duration: w.Pause, from: target, to: target},
	)
}
