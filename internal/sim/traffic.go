package sim

import (
	"fmt"

	"braidio/internal/rng"
	"braidio/internal/units"
)

// Arrival is one application-layer message to transmit.
type Arrival struct {
	// Time the message becomes available.
	Time units.Second
	// Bytes of payload.
	Bytes int
}

// Traffic generates arrivals. Implementations must be deterministic
// given their seed.
type Traffic interface {
	// Next returns the next arrival after time t.
	Next(t units.Second) Arrival
}

// CBR is constant-bitrate traffic: fixed-size messages at a fixed
// period — the continuous transfer of Scenario 1, or a sensor stream.
type CBR struct {
	// Period between messages.
	Period units.Second
	// Bytes per message.
	Bytes int
}

// NewCBR validates and returns a CBR source.
func NewCBR(period units.Second, bytes int) CBR {
	if period <= 0 || bytes <= 0 {
		panic(fmt.Sprintf("sim: invalid CBR period=%v bytes=%d", float64(period), bytes))
	}
	return CBR{Period: period, Bytes: bytes}
}

// Next implements Traffic.
func (c CBR) Next(t units.Second) Arrival {
	return Arrival{Time: t + c.Period, Bytes: c.Bytes}
}

// VideoStream models the Pivothead-style camera of the introduction: a
// frame every 1/fps seconds of the given size — CBR with video-flavored
// construction.
func VideoStream(fps float64, frameBytes int) CBR {
	if fps <= 0 {
		panic("sim: non-positive fps")
	}
	return NewCBR(units.Second(1/fps), frameBytes)
}

// Bursty is exponential (Poisson) inter-arrival traffic with fixed-size
// messages — notification-style workloads.
type Bursty struct {
	// MeanInterval between messages.
	MeanInterval units.Second
	// Bytes per message.
	Bytes int

	stream *rng.Stream
}

// NewBursty returns a Poisson source drawing jitter from the stream.
func NewBursty(mean units.Second, bytes int, stream *rng.Stream) *Bursty {
	if mean <= 0 || bytes <= 0 {
		panic(fmt.Sprintf("sim: invalid bursty mean=%v bytes=%d", float64(mean), bytes))
	}
	if stream == nil {
		panic("sim: nil stream")
	}
	return &Bursty{MeanInterval: mean, Bytes: bytes, stream: stream}
}

// Next implements Traffic.
func (b *Bursty) Next(t units.Second) Arrival {
	return Arrival{
		Time:  t + units.Second(b.stream.Exp(float64(b.MeanInterval))),
		Bytes: b.Bytes,
	}
}

// OfferedLoad returns a source's average offered load in bits per
// second.
func OfferedLoad(tr Traffic) units.BitRate {
	switch s := tr.(type) {
	case CBR:
		return units.BitRate(float64(8*s.Bytes) / float64(s.Period))
	case *Bursty:
		return units.BitRate(float64(8*s.Bytes) / float64(s.MeanInterval))
	default:
		panic(fmt.Sprintf("sim: unknown traffic type %T", tr))
	}
}
