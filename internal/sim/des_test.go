package sim

import (
	"testing"

	"braidio/internal/rng"
	"braidio/internal/units"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fire order %v, want [1 2 3]", order)
	}
	if e.Now() != 3 {
		t.Errorf("clock = %v, want 3", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("fired = %d, want 3", e.Fired())
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(1, func() { order = append(order, i) })
	}
	e.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", order)
		}
	}
}

func TestEngineSelfScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(0.5, tick)
		}
	}
	e.After(0.5, tick)
	e.Run(100)
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v, want 5", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++ })
	e.At(5, func() { fired++ })
	e.RunUntil(3)
	if fired != 1 {
		t.Errorf("fired = %d before the deadline, want 1", fired)
	}
	if e.Now() != 3 {
		t.Errorf("clock = %v, want advanced to the deadline", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Cancel(ev)
	e.Run(10)
	if fired {
		t.Error("canceled event fired")
	}
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
}

func TestEngineMaxEventsGuard(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.After(1e-9, loop) }
	e.After(0, loop)
	if got := e.Run(100); got != 100 {
		t.Errorf("runaway loop fired %d, want capped at 100", got)
	}
}

func TestEnginePanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.Step()
	for name, f := range map[string]func(){
		"past":     func() { e.At(1, func() {}) },
		"nil fn":   func() { e.At(10, nil) },
		"negative": func() { e.After(-1, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCBR(t *testing.T) {
	c := NewCBR(0.1, 100)
	a := c.Next(0)
	if a.Time != 0.1 || a.Bytes != 100 {
		t.Errorf("arrival = %+v", a)
	}
	if got := OfferedLoad(c); got != 8000 {
		t.Errorf("offered load = %v, want 8000 bps", got)
	}
}

func TestVideoStream(t *testing.T) {
	v := VideoStream(30, 5000)
	// 30 fps × 5 kB = 1.2 Mbps offered.
	if got := float64(OfferedLoad(v)); got != 1.2e6 {
		t.Errorf("offered load = %v, want 1.2e6", got)
	}
}

func TestBurstyMeanRate(t *testing.T) {
	b := NewBursty(0.5, 125, rng.New(3))
	var tm units.Second
	const n = 20000
	for i := 0; i < n; i++ {
		a := b.Next(tm)
		if a.Time <= tm {
			t.Fatal("non-advancing arrival")
		}
		tm = a.Time
	}
	meanGap := float64(tm) / n
	if meanGap < 0.48 || meanGap > 0.52 {
		t.Errorf("mean inter-arrival %v, want ≈0.5", meanGap)
	}
	if got := float64(OfferedLoad(b)); got != 2000 {
		t.Errorf("offered load = %v, want 2000", got)
	}
}

func TestTrafficValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"cbr period": func() { NewCBR(0, 1) },
		"cbr bytes":  func() { NewCBR(1, 0) },
		"video fps":  func() { VideoStream(0, 1) },
		"bursty":     func() { NewBursty(0, 1, rng.New(1)) },
		"bursty nil": func() { NewBursty(1, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
