package sim

import (
	"testing"

	"braidio/internal/rng"
	"braidio/internal/units"
)

func TestStaticWalk(t *testing.T) {
	w := StaticWalk(1.5)
	if w.DistanceAt(0) != 1.5 || w.DistanceAt(1000) != 1.5 {
		t.Error("static walk moved")
	}
}

func TestLinearWalk(t *testing.T) {
	w := LinearWalk{Start: 0.5, End: 4.5, Duration: 10}
	cases := []struct {
		t    units.Second
		want units.Meter
	}{{-1, 0.5}, {0, 0.5}, {5, 2.5}, {10, 4.5}, {100, 4.5}}
	for _, c := range cases {
		if got := w.DistanceAt(c.t); got != c.want {
			t.Errorf("DistanceAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Zero duration jumps straight to End.
	if got := (LinearWalk{Start: 1, End: 2}).DistanceAt(0); got != 2 {
		t.Errorf("zero-duration walk at t=0 = %v, want 2", got)
	}
}

func TestRandomWaypointBounds(t *testing.T) {
	w := NewRandomWaypoint(0.3, 5, 1.4, 2, rng.New(1))
	for i := 0; i < 5000; i++ {
		d := w.DistanceAt(units.Second(float64(i) * 0.5))
		if d < 0.3-1e-9 || d > 5+1e-9 {
			t.Fatalf("distance %v outside bounds at step %d", d, i)
		}
	}
}

func TestRandomWaypointContinuity(t *testing.T) {
	w := NewRandomWaypoint(0.3, 5, 1.4, 1, rng.New(2))
	prev := w.DistanceAt(0)
	const dt = 0.05
	for i := 1; i < 10000; i++ {
		d := w.DistanceAt(units.Second(float64(i) * dt))
		// Movement per step is bounded by speed·dt.
		if diff := float64(d - prev); diff > 1.4*dt+1e-9 || diff < -1.4*dt-1e-9 {
			t.Fatalf("teleport at step %d: %v → %v", i, prev, d)
		}
		prev = d
	}
}

func TestRandomWaypointConsistentRevisit(t *testing.T) {
	w := NewRandomWaypoint(0.3, 5, 1.4, 1, rng.New(3))
	d1 := w.DistanceAt(100)
	_ = w.DistanceAt(500)
	if w.DistanceAt(100) != d1 {
		t.Error("revisiting an earlier time changed the trace")
	}
}

func TestRandomWaypointDeterministic(t *testing.T) {
	a := NewRandomWaypoint(0.3, 5, 1.4, 1, rng.New(7))
	b := NewRandomWaypoint(0.3, 5, 1.4, 1, rng.New(7))
	for i := 0; i < 100; i++ {
		tm := units.Second(float64(i) * 3.3)
		if a.DistanceAt(tm) != b.DistanceAt(tm) {
			t.Fatal("same-seed walks diverged")
		}
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"bad bounds": func() { NewRandomWaypoint(2, 1, 1, 0, rng.New(1)) },
		"zero min":   func() { NewRandomWaypoint(0, 1, 1, 0, rng.New(1)) },
		"zero speed": func() { NewRandomWaypoint(1, 2, 0, 0, rng.New(1)) },
		"nil stream": func() { NewRandomWaypoint(1, 2, 1, 0, nil) },
		"neg time":   func() { NewRandomWaypoint(1, 2, 1, 0, rng.New(1)).DistanceAt(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
