package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"braidio/internal/baseline"
	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/linkcache"
	"braidio/internal/phy"
	"braidio/internal/stats"
	"braidio/internal/units"
)

// PairResult is the outcome of one device-pair scenario cell.
type PairResult struct {
	// TX and RX are the endpoint devices (TX transmits).
	TX, RX energy.Device
	// Distance between them.
	Distance units.Meter
	// Braidio is the braid engine's run.
	Braidio *core.Result
	// BluetoothBits is the Table 1 baseline's total.
	BluetoothBits float64
	// BestModeBits is the best-single-mode baseline's total; BestMode
	// identifies it.
	BestModeBits float64
	BestMode     phy.Mode
}

// GainVsBluetooth returns total-bits gain over the Bluetooth baseline
// (the cells of Fig. 15/17).
func (r *PairResult) GainVsBluetooth() float64 {
	return r.Braidio.Bits / r.BluetoothBits
}

// GainVsBestMode returns total-bits gain over the best single mode in
// isolation (the cells of Fig. 16).
func (r *PairResult) GainVsBestMode() float64 {
	return r.Braidio.Bits / r.BestModeBits
}

// RunPair runs the unidirectional continuous-transfer scenario of §6.3:
// both devices start full; tx streams to rx at the given distance until
// either battery dies.
func RunPair(m *phy.Model, d units.Meter, tx, rx energy.Device) (*PairResult, error) {
	if m == nil {
		return nil, fmt.Errorf("sim: nil model")
	}
	braid := core.NewBraid(m, d)
	res, err := braid.RunFresh(tx.Capacity, rx.Capacity)
	if err != nil {
		return nil, fmt.Errorf("sim: %s→%s at %v m: %w", tx.Name, rx.Name, float64(d), err)
	}
	links := linkcache.Characterize(m, d)
	single, err := core.BestSingleMode(links, tx.Capacity.Joules(), rx.Capacity.Joules())
	if err != nil {
		return nil, err
	}
	return &PairResult{
		TX: tx, RX: rx, Distance: d,
		Braidio:       res,
		BluetoothBits: baseline.Default.BitsUntilDeath(tx.Capacity.Joules(), rx.Capacity.Joules()),
		BestModeBits:  single.Bits,
		BestMode:      single.Dominant(),
	}, nil
}

// Matrix is a device×device gain matrix: Cells[row][col] is the gain when
// the column device transmits to the row device, matching the paper's
// "device on horizontal axis transmits to device on the vertical axis".
type Matrix struct {
	Devices []energy.Device
	Cells   [][]float64
}

// At returns the cell for a transmitter column and receiver row by
// device name.
func (m *Matrix) At(txName, rxName string) (float64, bool) {
	col, row := -1, -1
	for i, d := range m.Devices {
		if d.Name == txName {
			col = i
		}
		if d.Name == rxName {
			row = i
		}
	}
	if col < 0 || row < 0 {
		return 0, false
	}
	return m.Cells[row][col], true
}

// Max returns the largest cell value.
func (m *Matrix) Max() float64 {
	best := 0.0
	for _, row := range m.Cells {
		for _, v := range row {
			if v > best {
				best = v
			}
		}
	}
	return best
}

// Diagonal returns the equal-device cells.
func (m *Matrix) Diagonal() []float64 {
	out := make([]float64, len(m.Devices))
	for i := range m.Devices {
		out[i] = m.Cells[i][i]
	}
	return out
}

// gainFn computes one cell's gain for a tx→rx pair. Implementations
// must be safe for concurrent use (each cell runs on its own goroutine
// with its own batteries and braid state).
type gainFn func(tx, rx energy.Device) (float64, error)

// buildMatrix computes every cell through a worker pool bounded by
// GOMAXPROCS (one goroutine per row both oversubscribes small machines
// and load-balances poorly — cell costs vary by orders of magnitude with
// battery size). Dispatch stops at the first error; errors from cells
// already in flight are aggregated with errors.Join.
func buildMatrix(devices []energy.Device, f gainFn) (*Matrix, error) {
	n := len(devices)
	m := &Matrix{Devices: devices, Cells: make([][]float64, n)}
	for row := range m.Cells {
		m.Cells[row] = make([]float64, n)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > n*n {
		workers = n * n
	}
	if workers < 1 {
		workers = 1
	}

	type cell struct{ row, col int }
	jobs := make(chan cell)
	var (
		wg     sync.WaitGroup
		failed atomic.Bool
		errMu  sync.Mutex
		errs   []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				g, err := f(devices[c.col], devices[c.row])
				if err != nil {
					failed.Store(true)
					errMu.Lock()
					errs = append(errs, err)
					errMu.Unlock()
					continue
				}
				m.Cells[c.row][c.col] = g
			}
		}()
	}
dispatch:
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			if failed.Load() {
				break dispatch
			}
			jobs <- cell{row: row, col: col}
		}
	}
	close(jobs)
	wg.Wait()
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return m, nil
}

// GainMatrixBluetooth builds the Fig. 15 matrix: Braidio vs Bluetooth,
// unidirectional, at the given distance.
func GainMatrixBluetooth(m *phy.Model, d units.Meter, devices []energy.Device) (*Matrix, error) {
	return buildMatrix(devices, func(tx, rx energy.Device) (float64, error) {
		r, err := RunPair(m, d, tx, rx)
		if err != nil {
			return 0, err
		}
		return r.GainVsBluetooth(), nil
	})
}

// GainMatrixBestMode builds the Fig. 16 matrix: Braidio vs the best of
// its own three modes used exclusively.
func GainMatrixBestMode(m *phy.Model, d units.Meter, devices []energy.Device) (*Matrix, error) {
	return buildMatrix(devices, func(tx, rx energy.Device) (float64, error) {
		r, err := RunPair(m, d, tx, rx)
		if err != nil {
			return 0, err
		}
		return r.GainVsBestMode(), nil
	})
}

// BidirectionalResult is the outcome of the role-swapping scenario of
// Fig. 17.
type BidirectionalResult struct {
	A, B energy.Device
	// Bits is Braidio's total (both directions).
	Bits float64
	// BluetoothBits is the baseline's total.
	BluetoothBits float64
	// Rounds of role swapping performed.
	Rounds int
}

// Gain returns the Fig. 17 cell value.
func (r *BidirectionalResult) Gain() float64 { return r.Bits / r.BluetoothBits }

// RunBidirectional alternates equal-sized chunks in each direction
// ("transmitter and receiver switch roles after sending a certain amount
// of packets; equal amount of data is transmitted in both directions")
// until either battery dies.
func RunBidirectional(m *phy.Model, d units.Meter, a, b energy.Device) (*BidirectionalResult, error) {
	ba := a.NewBattery()
	bb := b.NewBattery()

	// Chunk size: a small slice of the projected one-way lifetime so
	// many role swaps happen before death.
	links := linkcache.Characterize(m, d)
	alloc, err := core.Optimize(links, ba.Remaining(), bb.Remaining())
	if err != nil {
		return nil, err
	}
	chunk := alloc.Bits / 50
	if chunk < 1 {
		chunk = 1
	}

	res := &BidirectionalResult{A: a, B: b}
	aToB := true
	for !ba.Empty() && !bb.Empty() {
		braid := core.NewBraid(m, d)
		braid.MaxBits = chunk
		var run *core.Result
		var err error
		if aToB {
			run, err = braid.Run(ba, bb)
		} else {
			run, err = braid.Run(bb, ba)
		}
		if err != nil {
			return nil, err
		}
		res.Bits += run.Bits
		res.Rounds++
		if run.Bits < chunk*0.5 {
			break // one side is effectively dead
		}
		aToB = !aToB
	}

	// Bluetooth baseline: alternating roles, each device pays
	// (TX+RX)/2 per delivered bit on average; the smaller battery
	// limits.
	txCost, rxCost := baseline.Default.PerBit()
	per := (float64(txCost) + float64(rxCost)) / 2
	minBudget := min(float64(a.Capacity.Joules()), float64(b.Capacity.Joules()))
	res.BluetoothBits = minBudget / per
	return res, nil
}

// GainMatrixBidirectional builds the Fig. 17 matrix.
func GainMatrixBidirectional(m *phy.Model, d units.Meter, devices []energy.Device) (*Matrix, error) {
	return buildMatrix(devices, func(tx, rx energy.Device) (float64, error) {
		r, err := RunBidirectional(m, d, tx, rx)
		if err != nil {
			return 0, err
		}
		return r.Gain(), nil
	})
}

// DistanceSweep computes gain-vs-Bluetooth across distances for a
// transmitter→receiver pair — one curve of Fig. 18. Distances where
// Braidio cannot operate at all are skipped.
func DistanceSweep(m *phy.Model, tx, rx energy.Device, distances []units.Meter) (stats.Series, error) {
	var out stats.Series
	for _, d := range distances {
		r, err := RunPair(m, d, tx, rx)
		if err != nil {
			if err == core.ErrOutOfRange {
				continue
			}
			// RunPair wraps the error; detect by probing availability.
			if len(linkcache.Characterize(m, d)) == 0 {
				continue
			}
			return nil, err
		}
		out = append(out, stats.Point{X: float64(d), Y: r.GainVsBluetooth()})
	}
	if len(out) == 0 {
		return nil, core.ErrOutOfRange
	}
	return out, nil
}
