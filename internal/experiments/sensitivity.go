package experiments

import (
	"fmt"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// ExtSensitivity sweeps the hardware parameters the model exposes and
// reports how the headline observables respond — which knobs the
// reproduction is actually sensitive to.
func ExtSensitivity() (*Report, error) {
	r := &Report{
		ID:    "ext-sensitivity",
		Title: "Sensitivity of the headline results to hardware parameters",
		PaperClaim: "robustness check (beyond the paper): the gain matrix is set by power " +
			"ratios, not RF minutiae; the ranges are set by the link budget",
	}
	fuel, _ := energy.DeviceByName("Nike Fuel Band")
	mbp, _ := energy.DeviceByName("MacBook Pro 15")

	headline := func(m *phy.Model) (bsRange float64, cornerGain float64, diagGain float64, err error) {
		bsRange = float64(m.Range(phy.ModeBackscatter, units.Rate100k))
		links := m.Characterize(0.3)
		if len(links) == 0 {
			return bsRange, 0, 0, nil
		}
		corner, err := core.Optimize(links, fuel.Capacity.Joules(), mbp.Capacity.Joules())
		if err != nil {
			return 0, 0, 0, err
		}
		// Bluetooth-side bits for the corner pair (the smaller budget
		// limits a symmetric radio).
		btBits := 60e-3 / (0.536 * 1e6) // J per delivered bit
		cornerGain = corner.Bits / (float64(fuel.Capacity.Joules()) / btBits)
		diag, err := core.Optimize(links, 3600, 3600)
		if err != nil {
			return 0, 0, 0, err
		}
		diagGain = diag.Bits / (3600 / btBits)
		return bsRange, cornerGain, diagGain, nil
	}

	type variant struct {
		name  string
		model func() *phy.Model
	}
	variants := []variant{
		{"baseline", phy.NewModel},
		{"reflection loss 6→4 dB", func() *phy.Model {
			m := phy.NewModel()
			m.RoundTrip.ReflectionLoss = 4
			return m
		}},
		{"reflection loss 6→8 dB", func() *phy.Model {
			m := phy.NewModel()
			m.RoundTrip.ReflectionLoss = 8
			return m
		}},
		{"antenna gain −2→0 dBi", func() *phy.Model {
			m := phy.NewModel()
			m.OneWay.TXAntenna.Gain = 0
			m.OneWay.RXAntenna.Gain = 0
			m.RoundTrip.Forward.TXAntenna.Gain = 0
			m.RoundTrip.Forward.RXAntenna.Gain = 0
			m.RoundTrip.Reverse.TXAntenna.Gain = 0
			m.RoundTrip.Reverse.RXAntenna.Gain = 0
			return m
		}},
		{"fade margin 3 dB", func() *phy.Model {
			m := phy.NewModel()
			m.FadeMargin = 3
			return m
		}},
		{"payload 240→64 B", func() *phy.Model {
			m := phy.NewModel()
			m.PayloadLen = 64
			return m
		}},
		{"ARQ accounting", func() *phy.Model {
			m := phy.NewModel()
			m.Retransmit = true
			return m
		}},
	}

	base, baseCorner, baseDiag, err := headline(phy.NewModel())
	if err != nil {
		return nil, err
	}
	rows := [][]string{}
	for _, v := range variants {
		rge, corner, diag, err := headline(v.model())
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			v.name,
			fmt.Sprintf("%.2f m (%+.0f%%)", rge, 100*(rge/base-1)),
			fmt.Sprintf("%.0f× (%+.1f%%)", corner, 100*(corner/baseCorner-1)),
			fmt.Sprintf("%.2f× (%+.1f%%)", diag, 100*(diag/baseDiag-1)),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "headline observables under parameter perturbations",
		Header: []string{"Variant", "Backscatter range @100k", "Corner gain", "Diagonal gain"},
		Rows:   rows,
	})
	r.AddNote("RF perturbations move ranges (link budget) but barely touch the gains (power ratios) — the paper's split between Figs. 12–13 and Figs. 15–17")
	return r, nil
}

// ExtQoS demonstrates the throughput-constrained offload variant: a
// fitness band streaming real-time data to a phone at 2 m, where
// power-proportionality wants slow 10 kbps backscatter slots that a
// live stream cannot absorb.
func ExtQoS() (*Report, error) {
	r := &Report{
		ID:    "ext-qos",
		Title: "QoS-aware carrier offload (minimum-throughput floor)",
		PaperClaim: "extension of Eq. 1: add Σ p_i/g_i ≤ 1/R_min — the braid keeps a " +
			"live stream's deadline at the price of power proportionality",
	}
	m := phy.NewModel()
	links := m.Characterize(2.0)
	fuel, _ := energy.DeviceByName("Nike Fuel Band")
	phone, _ := energy.DeviceByName("iPhone 6S")
	e1, e2 := fuel.Capacity.Joules(), phone.Capacity.Joules()

	base, err := core.Optimize(links, e1, e2)
	if err != nil {
		return nil, err
	}
	rows := [][]string{}
	for _, floor := range []units.BitRate{0, 100_000, 300_000, 600_000, 900_000} {
		alloc, err := core.OptimizeQoS(links, e1, e2, floor)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			floor.String(),
			alloc.Throughput().String(),
			fmt.Sprintf("%.3g", alloc.Bits),
			fmt.Sprintf("%.0f%%", 100*alloc.Fraction(phy.ModeBackscatter)),
			fmt.Sprintf("%+.1f%%", 100*(alloc.Bits/base.Bits-1)),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "Fuel Band → iPhone 6S at 2.0 m under rate floors",
		Header: []string{"Rate floor", "Throughput", "Bits", "Backscatter share", "Bits vs unconstrained"},
		Rows:   rows,
	})
	r.AddNote("the floor trades delivered bits for stream viability; above the floor nothing changes")
	return r, nil
}
