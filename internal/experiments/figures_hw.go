package experiments

import (
	"fmt"
	"math"

	"braidio/internal/chargepump"
	"braidio/internal/field"
	"braidio/internal/par"
	"braidio/internal/stats"
)

// Fig3 reproduces Fig. 3(b): the transient response of the single-stage
// RF charge pump to a 1 V sine — input, between-diodes node, and output
// traces.
func Fig3() (*Report, error) {
	r := &Report{
		ID:         "fig3",
		Title:      "TINA-style simulation of the RF charge pump",
		PaperClaim: "a 1 V sine input yields ≈2 V DC at the output",
	}
	pump := chargepump.Default()
	res, a, b, c, err := pump.Transient(1.0, 1e6, 10)
	if err != nil {
		return nil, err
	}
	for _, trace := range []struct {
		name string
		node int
	}{{"A: input", a}, {"B: between diodes", b}, {"C: output", c}} {
		s := make(stats.Series, 0, len(res.Time))
		// Decimate to keep the series manageable.
		step := len(res.Time) / 400
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(res.Time); i += step {
			s = append(s, stats.Point{X: res.Time[i] * 1e6, Y: res.V[trace.node][i]})
		}
		r.Series = append(r.Series, NamedSeries{Name: trace.name + " (µs vs V)", Data: s})
	}
	out := res.Final(c)
	r.AddNote("output settles at %.2f V (ideal 2 V minus two Schottky drops)", out)
	if ts, ok := chargepump.SettlingTime(res, c, 0.9); ok {
		r.AddNote("90%% settling in %.2f µs", ts*1e6)
	}
	r.AddNote("analytic Dickson model with the observed diode drop: %.2f V",
		chargepump.Pump{Stages: 1, StageCapacitance: pump.StageCapacitance, DiodeDrop: (2 - out) / 2, LoadResistance: pump.LoadResistance}.OutputDC(1))
	return r, nil
}

// Fig4 reproduces Fig. 4(b) and (c): the phase-cancellation field map
// over the 2 m × 2 m area and the SNR along the Y=0.5 line.
func Fig4() (*Report, error) {
	r := &Report{
		ID:         "fig4",
		Title:      "Phase cancellation field (TX at 0.95/0.5, RX at 1.05/0.5)",
		PaperClaim: "dark null arcs close to the antennas; null points with very low SNR on the Y=0.5 line",
	}
	scene := field.PaperScene()
	const n = 81
	m := scene.FieldMap(0, 0, 2, 2, n, n)

	// Render a coarse version of the map as a matrix. Rows are
	// independent point evaluations of the immutable scene, so they fan
	// out over the shared pool; each row writes only its own slot.
	const coarse = 21
	cells := make([][]float64, coarse)
	rowLabels := make([]string, coarse)
	colLabels := make([]string, coarse)
	par.For(0, coarse, func(i int) {
		rowLabels[i] = fmt.Sprintf("%.1f", 2*float64(i)/float64(coarse-1))
		colLabels[i] = rowLabels[i]
		cells[i] = make([]float64, coarse)
		for j := 0; j < coarse; j++ {
			y := 2 * float64(i) / float64(coarse-1)
			x := 2 * float64(j) / float64(coarse-1)
			cells[i][j] = float64(scene.SNR(field.Vec2{X: x, Y: y}))
		}
	})
	r.Matrices = append(r.Matrices, NamedMatrix{
		Name: "Fig. 4(b): SNR map (dB)", RowLabels: rowLabels, ColLabels: colLabels,
		Cells: cells, Format: "%.0f",
	})

	line := scene.LineSweep(field.Vec2{X: 0.02, Y: 0.5}, field.Vec2{X: 2, Y: 0.5}, 2000, false)
	r.Series = append(r.Series, NamedSeries{Name: "Fig. 4(c): SNR along Y=0.5 (m vs dB)", Data: line})

	min, max := m.MinMax()
	r.AddNote("field dynamic range: %.0f..%.0f dB", float64(min), float64(max))
	nulls := field.Nulls(line, 0)
	r.AddNote("%d deep nulls (<0 dB) along the line; first at %.2f m", len(nulls), firstOr(nulls, math.NaN()))
	return r, nil
}

func firstOr(xs []float64, def float64) float64 {
	if len(xs) == 0 {
		return def
	}
	return xs[0]
}

// Fig6 reproduces Fig. 6: received SNR with and without antenna
// diversity over the 0.3–2 m sweep.
func Fig6() (*Report, error) {
	r := &Report{
		ID:         "fig6",
		Title:      "Effect of antenna diversity on SNR",
		PaperClaim: "without diversity SNR drops from ~30 dB to ~0 dB at nulls; with diversity nulls stay above 5 dB",
	}
	scene := field.PaperScene()
	start := field.Vec2{X: 1.0, Y: 0.8}
	end := field.Vec2{X: 1.0, Y: 2.5}
	// The two diversity settings are independent 3000-point sweeps of
	// the immutable scene — one pool cell each.
	sweeps := make([]stats.Series, 2)
	par.For(0, 2, func(i int) {
		sweeps[i] = scene.LineSweep(start, end, 3000, i == 1)
	})
	without, with := sweeps[0], sweeps[1]
	// Re-base the X axis to absolute distance from the antennas.
	for i := range without {
		without[i].X += 0.3
		with[i].X += 0.3
	}
	r.Series = append(r.Series,
		NamedSeries{Name: "without diversity (m vs dB)", Data: without},
		NamedSeries{Name: "with diversity (m vs dB)", Data: with},
	)
	r.AddNote("worst case without diversity: %.1f dB", field.WorstCase(without))
	r.AddNote("worst case with diversity:    %.1f dB", field.WorstCase(with))
	r.AddNote("diversity lifts the worst null by %.1f dB",
		field.WorstCase(with)-field.WorstCase(without))
	return r, nil
}
