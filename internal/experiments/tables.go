package experiments

import (
	"fmt"

	"braidio/internal/baseline"
	"braidio/internal/energy"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// Table1 reproduces Table 1: transmitter/receiver power and power ratio
// of the Bluetooth chips.
func Table1() (*Report, error) {
	r := &Report{
		ID:         "table1",
		Title:      "Transmitter/receiver power ratio of Bluetooth and BLE",
		PaperClaim: "CC2541 ratio 0.82–1.0, CC2640 ratio 1.1–1.6",
	}
	rows := [][]string{}
	for _, b := range []baseline.Bluetooth{baseline.CC2541, baseline.CC2640} {
		rows = append(rows, []string{
			b.Name,
			b.TXPower.String(),
			b.RXPower.String(),
			fmt.Sprintf("%.2f", b.PowerRatio()),
		})
		r.AddNote("%s TX/RX ratio = %.2f", b.Name, b.PowerRatio())
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "Table 1",
		Header: []string{"Chip", "Transmit", "Receive", "TX/RX Ratio"},
		Rows:   rows,
	})
	return r, nil
}

// Table2 reproduces Table 2: power consumption and cost of commercial
// readers.
func Table2() (*Report, error) {
	r := &Report{
		ID:         "table2",
		Title:      "Power consumption and cost of commercial readers",
		PaperClaim: "reader power spans 0.64 W (AS3993) to 4.2 W (M6e)",
	}
	rows := [][]string{}
	for _, rd := range baseline.Readers {
		rows = append(rows, []string{
			rd.Model,
			fmt.Sprintf("%v@%gdBm", rd.Power, float64(rd.TXOut)),
			rd.RXPower.String(),
			fmt.Sprintf("$%g", rd.CostUSD),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "Table 2",
		Header: []string{"Model", "Total power", "Est. RX power", "Cost"},
		Rows:   rows,
	})
	lowest := baseline.LowestPowerReader()
	r.AddNote("lowest-power reader: %s at %v (the paper's baseline)", lowest.Model, lowest.Power)
	return r, nil
}

// Table5 reproduces Table 5: switching overhead in each mode, and
// validates the "negligible" conclusion by comparing against one second
// of operation.
func Table5() (*Report, error) {
	r := &Report{
		ID:         "table5",
		Title:      "Switching overhead in different modes",
		PaperClaim: "switching overhead is negligible in all modes (backscatter worst case at 10 kbps)",
	}
	rows := [][]string{}
	for _, m := range phy.Modes {
		oh := phy.SwitchOverhead[m]
		rows = append(rows, []string{
			m.String(),
			fmt.Sprintf("%.3g Wh (%.3g J)", float64(oh.TX.WattHours()), float64(oh.TX)),
			fmt.Sprintf("%.3g Wh (%.3g J)", float64(oh.RX.WattHours()), float64(oh.RX)),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "Table 5",
		Header: []string{"Mode", "TX switch", "RX switch"},
		Rows:   rows,
	})
	// Negligibility: worst-case switch vs one second of the mode's own
	// operation at its cheapest rate.
	worst := phy.SwitchOverhead[phy.ModeBackscatter].TX
	second := units.Energy(phy.BackscatterRXPower, 1)
	r.AddNote("worst switch (backscatter TX at 10 kbps) = %.3g J = %.2f%% of one second of reader operation",
		float64(worst), 100*float64(worst)/float64(second))
	return r, nil
}

// Fig1 reproduces Fig. 1: battery capacities of the device catalog.
func Fig1() (*Report, error) {
	r := &Report{
		ID:         "fig1",
		Title:      "Battery capacity for mobile devices",
		PaperClaim: "capacities span three orders of magnitude from fitness bands to laptops",
	}
	rows := [][]string{}
	for _, d := range energy.Catalog {
		rows = append(rows, []string{d.Name, d.Class, fmt.Sprintf("%.2f Wh", float64(d.Capacity))})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "Fig. 1 data",
		Header: []string{"Device", "Class", "Capacity"},
		Rows:   rows,
	})
	r.AddNote("capacity span = %.0f× (max/min)", energy.CapacitySpan())
	return r, nil
}
