package experiments

import (
	"fmt"
	"math"

	"braidio/internal/baseline"
	"braidio/internal/modem"
	"braidio/internal/phy"
	"braidio/internal/stats"
	"braidio/internal/units"
)

// ExtWakeup compares idle listening strategies: a duty-cycled active
// radio (the related-work approach of [21, 38, 43, 49]) trades wake
// latency for average power along a curve, while Braidio's passive
// receiver mode listens continuously at tens of microwatts with no added
// latency.
func ExtWakeup() (*Report, error) {
	r := &Report{
		ID:    "ext-wakeup",
		Title: "Idle listening: duty-cycled active radio vs the passive receiver",
		PaperClaim: "extension: the passive receiver mode 'is not one we sought out " +
			"to design, but is an interesting option' — it solves idle listening",
	}
	const window = 5e-3 // 5 ms listen window per wakeup
	const sleep = 3e-6  // 3 µW sleep current
	passive := phy.PassiveRXPower(units.Rate100k)

	rows := [][]string{}
	var curve stats.Series
	for _, interval := range []units.Second{0.02, 0.1, 0.5, 1, 2, 5, 10, 30} {
		d := baseline.DutyCycled{Radio: baseline.Default, Interval: interval, Window: window, SleepPower: sleep}
		rows = append(rows, []string{
			fmt.Sprintf("%g s", float64(interval)),
			d.IdlePower().String(),
			fmt.Sprintf("%g s", float64(d.WorstCaseLatency())),
		})
		curve = append(curve, stats.Point{X: float64(d.WorstCaseLatency()), Y: d.IdlePower().Microwatts()})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "duty-cycled CC2541 (5 ms window, 3 µW sleep)",
		Header: []string{"Wake interval", "Avg. idle power", "Worst latency"},
		Rows:   rows,
	})
	r.Series = append(r.Series, NamedSeries{Name: "idle µW vs worst latency (s)", Data: curve})

	// The crossover: how much latency must the duty cycler accept to
	// match the always-on passive receiver?
	matchDuty := (float64(passive) - sleep) / float64(baseline.Default.RXPower)
	matchInterval := window / matchDuty
	r.AddNote("Braidio passive receiver: %v continuous, zero added latency", passive)
	r.AddNote("a duty-cycled CC2541 matches that average power only at a %.1f s wake interval — %.1f s worst-case latency",
		matchInterval, matchInterval)
	return r, nil
}

// ExtQAM evaluates the 16-QAM backscatter extension of Thomas & Reynolds
// (the paper's [48]): with the tag's 1 MHz symbol clock unchanged,
// 16-QAM carries 4 bits/symbol — quadrupling throughput and tag
// efficiency — at the price of a denser constellation that needs more
// SNR and therefore less range.
func ExtQAM() (*Report, error) {
	r := &Report{
		ID:    "ext-qam",
		Title: "16-QAM backscatter (related work [48])",
		PaperClaim: "extension: '[48] ... high order modulation schemes such as 16QAM' — " +
			"4 bits/symbol at the same tag clock",
	}
	m := phy.NewModel()

	// Link budget: the 4 Mbps 16-QAM uplink needs SNRForBER(QAM16)
	// per bit over the same 1 MHz-symbol noise floor the binary 1 Mbps
	// link uses, i.e. 4× the per-bit SNR in total signal power terms is
	// offset by the same symbol bandwidth.
	binaryNeed := modem.SNRForBER(modem.FSKNonCoherent, phy.RangeBERTarget)
	qamNeedPerBit := modem.SNRForBER(modem.QAM16Coherent, phy.RangeBERTarget)
	qamNeedTotal := qamNeedPerBit * modem.QAM16BitsPerSymbol
	extraDB := units.DBFromRatio(qamNeedTotal / binaryNeed)

	// The binary 1 Mbps link reaches 0.9 m on the round-trip 40·log10
	// slope; the QAM link gives up extraDB of margin.
	binaryRange := m.Range(phy.ModeBackscatter, units.Rate1M)
	qamRange := binaryRange * units.Meter(math.Pow(10, -float64(extraDB)/40))

	// Tag energetics: same modulator clock, 4× the bits.
	tagPower := phy.BackscatterTXPower(units.Rate1M)
	binEff := units.PerBit(tagPower, units.Rate1M).BitsPerJoule()
	qamEff := units.PerBit(tagPower, 4*units.Rate1M).BitsPerJoule()
	readerEff := units.PerBit(phy.BackscatterRXPower, 4*units.Rate1M).BitsPerJoule()

	r.Tables = append(r.Tables, NamedTable{
		Name:   "binary vs 16-QAM backscatter uplink (1 MHz symbol clock)",
		Header: []string{"Uplink", "Throughput", "Range", "Tag bits/J", "Reader bits/J"},
		Rows: [][]string{
			{"FSK (paper)", "1 Mbps", fmt.Sprintf("%.2f m", float64(binaryRange)), fmt.Sprintf("%.3g", binEff),
				fmt.Sprintf("%.3g", units.PerBit(phy.BackscatterRXPower, units.Rate1M).BitsPerJoule())},
			{"16-QAM [48]", "4 Mbps", fmt.Sprintf("%.2f m", float64(qamRange)), fmt.Sprintf("%.3g", qamEff),
				fmt.Sprintf("%.3g", readerEff)},
		},
	})
	r.AddNote("16-QAM needs %.1f dB more SNR per symbol, costing %.0f%% of the range",
		float64(extraDB), 100*(1-float64(qamRange/binaryRange)))
	r.AddNote("in exchange the tag moves 4× the bits per joule (%.3g vs %.3g bits/J)", qamEff, binEff)
	return r, nil
}
