package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every registered experiment end to end
// and renders each report — the smoke test that the full evaluation is
// regenerable.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Errorf("report ID %q, want %q", rep.ID, e.ID)
			}
			if len(rep.Tables)+len(rep.Series)+len(rep.Matrices) == 0 {
				t.Error("report has no content")
			}
			var b strings.Builder
			if err := rep.Render(&b); err != nil {
				t.Fatalf("render: %v", err)
			}
			if !strings.Contains(b.String(), e.ID) {
				t.Error("rendered output missing experiment ID")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig15"); !ok {
		t.Error("fig15 not registered")
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("unknown experiment found")
	}
	// IDs are unique.
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestWriteCSV(t *testing.T) {
	rep, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := rep.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Fig. 4(b): SNR map (dB)": "fig-4-b-snr-map-db",
		"Table 1":                 "table-1",
		"simple":                  "simple",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

// The remaining tests verify each report's headline numbers against the
// paper's claims — the acceptance criteria of DESIGN.md §4.

func noteContains(t *testing.T, rep *Report, want string) {
	t.Helper()
	for _, n := range rep.Notes {
		if strings.Contains(n, want) {
			return
		}
	}
	t.Errorf("%s: no note contains %q; notes: %v", rep.ID, want, rep.Notes)
}

func TestTable1Claims(t *testing.T) {
	rep, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	noteContains(t, rep, "CC2541")
	noteContains(t, rep, "CC2640")
}

func TestTable5NegligibleClaim(t *testing.T) {
	rep, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	// The note reports the worst switch as a percentage of a second of
	// operation; it must be well under 1%.
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "%") && strings.Contains(n, "worst switch") {
			found = true
			if strings.Contains(n, "= 1.") || strings.Contains(n, "= 2.") {
				t.Errorf("worst switch not negligible: %s", n)
			}
		}
	}
	if !found {
		t.Error("negligibility note missing")
	}
}

func TestFig3Claim(t *testing.T) {
	rep, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	noteContains(t, rep, "output settles at 1.8")
	if len(rep.Series) != 3 {
		t.Errorf("Fig. 3 has %d traces, want the paper's 3", len(rep.Series))
	}
}

func TestFig6Claim(t *testing.T) {
	rep, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	noteContains(t, rep, "diversity lifts the worst null")
}

func TestFig9Claim(t *testing.T) {
	rep, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	noteContains(t, rep, "1:2546")
	noteContains(t, rep, "3546:1")
	noteContains(t, rep, "point P")
	// "A seven orders of magnitude span!"
	noteContains(t, rep, "7.0 orders")
}

func TestFig12Claim(t *testing.T) {
	rep, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	noteContains(t, rep, "Braidio 1.8")
	noteContains(t, rep, "5.0× more efficient")
}

func TestFig13Ranges(t *testing.T) {
	rep, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	var flat strings.Builder
	for _, row := range rep.Tables[0].Rows {
		flat.WriteString(strings.Join(row, " "))
		flat.WriteString("\n")
	}
	for _, want := range []string{"0.9", "1.8", "2.4", "3.9", "4.1", "5.1"} {
		if !strings.Contains(flat.String(), want) {
			t.Errorf("range table missing %s m:\n%s", want, flat.String())
		}
	}
}

func TestFig14RatioLadder(t *testing.T) {
	rep, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"5571:1", "7800:1", "1:4000", "1:5600"} {
		noteContains(t, rep, want)
	}
}

func TestFig15Claims(t *testing.T) {
	rep, err := Fig15()
	if err != nil {
		t.Fatal(err)
	}
	noteContains(t, rep, "paper 397")
	if len(rep.Matrices) != 1 || len(rep.Matrices[0].Cells) != 10 {
		t.Fatal("Fig. 15 matrix is not 10×10")
	}
}

func TestFig18SeriesCount(t *testing.T) {
	rep, err := Fig18()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 6 {
		t.Errorf("Fig. 18 has %d curves, want the paper's 6", len(rep.Series))
	}
}

func TestRatioLabel(t *testing.T) {
	if got := ratioLabel(3546); got != "3546:1" {
		t.Errorf("ratioLabel(3546) = %q", got)
	}
	if got := ratioLabel(1.0 / 2546); got != "1:2546" {
		t.Errorf("ratioLabel(1/2546) = %q", got)
	}
}
