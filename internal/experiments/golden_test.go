package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden notes file")

// goldenNotes renders every experiment's headline notes into one
// document. Everything in the module is deterministically seeded, so
// this is stable run-to-run; any change to a calibration constant, a
// model, or a solver shows up as a diff here.
func goldenNotes(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for _, e := range All() {
		rep, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Fprintf(&b, "[%s]\n", rep.ID)
		for _, n := range rep.Notes {
			fmt.Fprintf(&b, "%s\n", n)
		}
	}
	return b.String()
}

// TestGoldenNotes compares the regenerated headline numbers against the
// committed golden file. Regenerate intentionally with:
//
//	go test ./internal/experiments -run TestGoldenNotes -update
func TestGoldenNotes(t *testing.T) {
	got := goldenNotes(t)
	path := filepath.Join("testdata", "notes.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			g, w := "", ""
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Errorf("line %d:\n  got:  %q\n  want: %q", i+1, g, w)
			}
		}
	}
}
