package experiments

import (
	"fmt"
	"math"

	"braidio/internal/core"
	"braidio/internal/par"
	"braidio/internal/phy"
	"braidio/internal/stats"
	"braidio/internal/units"
)

// Fig9 reproduces Fig. 9: the efficiency points of the three modes at
// 0.3 m, the ratio annotations (0.9524:1, 1:2546, 3546:1), the dynamic
// range, and the point P a 100:1 pair operates at.
func Fig9() (*Report, error) {
	r := &Report{
		ID:         "fig9",
		Title:      "Dynamic range of power assignment at 0.3 m",
		PaperClaim: "TX:RX efficiency ratios span 1:2546 to 3546:1 — seven orders of magnitude",
	}
	m := phy.NewModel()
	region := core.RegionAt(m, 0.3)
	rows := [][]string{}
	for _, p := range region.Points {
		rows = append(rows, []string{
			p.Mode.String(),
			p.Rate.String(),
			fmt.Sprintf("%.3g", p.TXBitsPerJoule),
			fmt.Sprintf("%.3g", p.RXBitsPerJoule),
			ratioLabel(p.EfficiencyRatio()),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "Fig. 9 corners (bits/joule)",
		Header: []string{"Mode", "Rate", "TX bits/J", "RX bits/J", "TX:RX ratio"},
		Rows:   rows,
	})
	min, max := region.RatioSpan()
	r.AddNote("ratio span %s .. %s (%.1f orders of magnitude)",
		ratioLabel(min), ratioLabel(max), region.DynamicRangeOrders())
	p, err := core.PointP(m, 0.3, 100, 1)
	if err != nil {
		return nil, err
	}
	r.AddNote("point P (100:1 budgets): %.3g TX bits/J, %.3g RX bits/J, dominant mode %v",
		p.TXBitsPerJoule, p.RXBitsPerJoule, p.Mode)
	return r, nil
}

// ratioLabel formats an efficiency ratio the way the paper annotates it:
// "3546:1" when it favors the transmitter, "1:2546" when the receiver.
func ratioLabel(ratio float64) string {
	if ratio >= 1 {
		return fmt.Sprintf("%.4g:1", ratio)
	}
	return fmt.Sprintf("1:%.4g", 1/ratio)
}

// Fig12 reproduces Fig. 12: BER vs distance at 100 kbps for Braidio's
// backscatter receiver and the AS3993 commercial reader.
func Fig12() (*Report, error) {
	r := &Report{
		ID:         "fig12",
		Title:      "Bit error rate: Braidio vs commercial reader at 100 kbps",
		PaperClaim: "Braidio reaches 1.8 m vs the reader's 3 m (~40% less range) at 129 mW vs 640 mW (~5× less power)",
	}
	m := phy.NewModel()
	// The two receivers' curves are independent sweeps over the same
	// distance grid — one pool cell each (the model and its link cache
	// are safe for concurrent readers).
	curves := make([]stats.Series, 2)
	par.For(0, 2, func(c int) {
		for d := 0.2; d <= 4.0; d += 0.05 {
			var y float64
			if c == 0 {
				y = logBER(m.BER(phy.ModeBackscatter, units.Rate100k, units.Meter(d)))
			} else {
				y = logBER(phy.CommercialReaderBER(units.Meter(d)))
			}
			curves[c] = append(curves[c], stats.Point{X: d, Y: y})
		}
	})
	braidio, commercial := curves[0], curves[1]
	r.Series = append(r.Series,
		NamedSeries{Name: "Braidio log10(BER) vs m", Data: braidio},
		NamedSeries{Name: "AS3993 log10(BER) vs m", Data: commercial},
	)
	bRange, _ := braidio.CrossAbove(-2)
	cRange, _ := commercial.CrossAbove(-2)
	r.AddNote("operational range (BER<1%%): Braidio %.2f m, commercial %.2f m (%.0f%% less)",
		bRange, cRange, 100*(1-bRange/cRange))
	r.AddNote("power: Braidio %v vs reader %v (%.1f× more efficient)",
		phy.BackscatterRXPower, phy.ReaderPowerDraw, float64(phy.ReaderPowerDraw/phy.BackscatterRXPower))
	return r, nil
}

// logBER maps a BER to log10 for plotting, flooring at 1e-6.
func logBER(ber float64) float64 {
	if ber < 1e-6 {
		ber = 1e-6
	}
	return math.Log10(ber)
}

// Fig13 reproduces Fig. 13: BER vs distance for the backscatter and
// passive modes at 1 Mbps, 100 kbps, and 10 kbps.
func Fig13() (*Report, error) {
	r := &Report{
		ID:         "fig13",
		Title:      "BER over distance for backscatter and passive modes",
		PaperClaim: "ranges: backscatter 0.9/1.8/2.4 m, passive 3.9/4.2/5.1 m at 1M/100k/10k",
	}
	m := phy.NewModel()
	// Six independent (mode, rate) cells; each sweeps its own distance
	// grid and computes its own range. Fan out over the shared pool and
	// assemble series and table rows in cell order afterwards.
	type cell struct {
		mode phy.Mode
		rate units.BitRate
		data stats.Series
		rng  units.Meter
	}
	var specs []cell
	for _, mode := range []phy.Mode{phy.ModeBackscatter, phy.ModePassive} {
		for _, rate := range phy.Rates {
			specs = append(specs, cell{mode: mode, rate: rate})
		}
	}
	par.For(0, len(specs), func(i int) {
		c := &specs[i]
		maxD := 3.0
		if c.mode == phy.ModePassive {
			maxD = 6.0
		}
		for d := 0.1; d <= maxD; d += 0.02 {
			c.data = append(c.data, stats.Point{X: d, Y: logBER(m.BER(c.mode, c.rate, units.Meter(d)))})
		}
		c.rng = m.Range(c.mode, c.rate)
	})
	rows := [][]string{}
	for _, c := range specs {
		r.Series = append(r.Series, NamedSeries{
			Name: fmt.Sprintf("%v@%v log10(BER) vs m", c.mode, c.rate),
			Data: c.data,
		})
		rows = append(rows, []string{
			c.mode.String(), c.rate.String(),
			fmt.Sprintf("%.2f m", float64(c.rng)),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "operational ranges (BER < 1%)",
		Header: []string{"Mode", "Rate", "Range"},
		Rows:   rows,
	})
	return r, nil
}

// Fig14 reproduces Fig. 14: how the feasible efficiency region changes
// with distance — the corners, ratio annotations, and the shrink from
// triangle to line to point.
func Fig14() (*Report, error) {
	r := &Report{
		ID:         "fig14",
		Title:      "Energy efficiency and dynamic range at different distances",
		PaperClaim: "ratios degrade 3546:1→5571:1→7800:1 and 1:2546→1:4000→1:5600; backscatter drops out at 2.4 m, passive degrades to 10 kbps, only active beyond ~5.1 m",
	}
	m := phy.NewModel()
	rows := [][]string{}
	for _, d := range []units.Meter{0.3, 0.95, 1.85, 2.45, 4.0, 4.5, 5.2} {
		region := core.RegionAt(m, d)
		shape := "triangle"
		if len(region.Points) == 2 {
			shape = "line"
		} else if len(region.Points) == 1 {
			shape = "point"
		}
		min, max := region.RatioSpan()
		detail := ""
		for i, p := range region.Points {
			if i > 0 {
				detail += ", "
			}
			detail += fmt.Sprintf("%v@%v", p.Mode, p.Rate)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f m", float64(d)),
			shape,
			detail,
			ratioLabel(min) + " .. " + ratioLabel(max),
			fmt.Sprintf("%.1f", region.DynamicRangeOrders()),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "feasible regions vs distance",
		Header: []string{"Distance", "Shape", "Available links", "Ratio span", "Orders"},
		Rows:   rows,
	})
	// The headline ratio ladder.
	for _, rate := range phy.Rates {
		r.AddNote("backscatter@%v: %s; passive@%v: %s",
			rate, ratioLabel(float64(phy.BackscatterRXPower/phy.BackscatterTXPower(rate))),
			rate, ratioLabel(float64(phy.PassiveRXPower(rate)/phy.PassiveTXPower)))
	}
	return r, nil
}
