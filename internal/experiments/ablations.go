package experiments

import (
	"fmt"
	"math"

	"braidio/internal/core"
	"braidio/internal/field"
	"braidio/internal/phy"
	"braidio/internal/stats"
	"braidio/internal/units"
)

// ablationCapacities are the budgets used by the braid ablations: small
// enough to run fast, asymmetric enough to braid.
const (
	ablC1 units.WattHour = 0.004
	ablC2 units.WattHour = 0.001
)

// AblationScheduler compares the default block schedule against the
// interleaved even-spread schedule: same proportions, very different
// switch counts.
func AblationScheduler() (*Report, error) {
	r := &Report{
		ID:    "ablation-scheduler",
		Title: "Block vs interleaved mode scheduling",
	}
	m := phy.NewModel()
	rows := [][]string{}
	for _, cfg := range []struct {
		name       string
		interleave bool
	}{{"block (default)", false}, {"interleaved", true}} {
		b := core.NewBraid(m, 0.3)
		b.Interleave = cfg.interleave
		res, err := b.RunFresh(ablC1, ablC2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			cfg.name,
			fmt.Sprintf("%.4g", res.Bits),
			fmt.Sprintf("%d", res.Switches),
			fmt.Sprintf("%.3g J", float64(res.SwitchEnergy1+res.SwitchEnergy2)),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "scheduler comparison at 0.3 m",
		Header: []string{"Scheduler", "Bits", "Switches", "Switch energy"},
		Rows:   rows,
	})
	r.AddNote("blocks pay a handful of switches per window; interleaving pays one per frame boundary")
	return r, nil
}

// AblationSwitchOverhead quantifies the Table 5 overheads' impact on
// delivered bits — validating the paper's "negligible" conclusion under
// block scheduling.
func AblationSwitchOverhead() (*Report, error) {
	r := &Report{
		ID:    "ablation-switch",
		Title: "Throughput cost of mode-switch overheads",
	}
	m := phy.NewModel()
	rows := [][]string{}
	for _, d := range []units.Meter{0.3, 1.5, 2.2} {
		with := core.NewBraid(m, d)
		without := core.NewBraid(m, d)
		without.IncludeSwitchOverhead = false
		rw, err := with.RunFresh(ablC1, ablC2)
		if err != nil {
			return nil, err
		}
		ro, err := without.RunFresh(ablC1, ablC2)
		if err != nil {
			return nil, err
		}
		loss := 1 - rw.Bits/ro.Bits
		rows = append(rows, []string{
			fmt.Sprintf("%.1f m", float64(d)),
			fmt.Sprintf("%.4g", ro.Bits),
			fmt.Sprintf("%.4g", rw.Bits),
			fmt.Sprintf("%.3f%%", 100*loss),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "bits with and without Table 5 overheads",
		Header: []string{"Distance", "Bits (no overhead)", "Bits (with)", "Loss"},
		Rows:   rows,
	})
	return r, nil
}

// AblationARQ compares the paper's ideal loss accounting against ARQ
// (whole-frame retransmission) semantics near the passive range edge.
func AblationARQ() (*Report, error) {
	r := &Report{
		ID:    "ablation-arq",
		Title: "Ideal vs ARQ loss accounting",
	}
	rows := [][]string{}
	for _, d := range []units.Meter{0.5, 2.6, 3.4} {
		ideal := phy.NewModel()
		arq := phy.NewModel()
		arq.Retransmit = true
		bi := core.NewBraid(ideal, d)
		ba := core.NewBraid(arq, d)
		ri, err := bi.RunFresh(ablC1, ablC2)
		if err != nil {
			return nil, err
		}
		ra, err := ba.RunFresh(ablC1, ablC2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f m", float64(d)),
			fmt.Sprintf("%.4g", ri.Bits),
			fmt.Sprintf("%.4g", ra.Bits),
			fmt.Sprintf("%.2f", ra.Bits/ri.Bits),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "delivered bits under the two loss models",
		Header: []string{"Distance", "Ideal", "ARQ", "ARQ/Ideal"},
		Rows:   rows,
	})
	r.AddNote("ARQ semantics penalize operation near range edges where frame error rates explode before BER crosses the 1%% target")
	return r, nil
}

// AblationSolver cross-checks the closed-form optimizer against the
// simplex LP on the Eq. 1 problem across battery ratios.
func AblationSolver() (*Report, error) {
	r := &Report{
		ID:    "ablation-solver",
		Title: "Closed-form vertex optimizer vs simplex LP (Eq. 1)",
	}
	model := phy.NewModel()
	links := model.Characterize(0.3)
	// One-slot batch arena reused across the sweep: each ratio's simplex
	// solve warm-starts from the previous ratio's final basis (falling
	// back to a cold two-phase solve when that basis is infeasible at
	// the new ratio), which exercises the warm path on the same numbers
	// the per-call SolveEq1 produces — warm and cold are bit-identical.
	var batch core.BatchScratch
	batch.Reset(1)
	batch.Cols.Reset(1)
	model.CharacterizeColumns(&batch.Cols, 0, 0.3)
	rows := [][]string{}
	worst := 0.0
	for _, ratio := range []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000} {
		direct, err := core.Optimize(links, units.Joule(1000*ratio), 1000)
		if err != nil {
			return nil, err
		}
		batch.E1[0], batch.E2[0] = units.Joule(1000*ratio), 1000
		core.SolveEq1Batch(&batch, 1, nil)
		lpErr := batch.Errs[0]
		lpBits := math.NaN()
		status := "infeasible (clamped regime)"
		if lpErr == nil {
			lpBits = batch.Bits[0]
			status = "agrees"
			if rel := math.Abs(direct.Bits-lpBits) / direct.Bits; rel > worst {
				worst = rel
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g:1", ratio),
			fmt.Sprintf("%.6g", direct.Bits),
			fmt.Sprintf("%.6g", lpBits),
			status,
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "bits until death by solver",
		Header: []string{"E1:E2", "Closed form", "Simplex LP", "Status"},
		Rows:   rows,
	})
	r.AddNote("worst relative disagreement where both solve: %.2g", worst)
	return r, nil
}

// AblationDiversity quantifies what the second antenna buys: the worst
// null depth with and without diversity across the Fig. 6 sweep.
func AblationDiversity() (*Report, error) {
	r := &Report{
		ID:    "ablation-diversity",
		Title: "Antenna diversity on/off",
	}
	scene := field.PaperScene()
	start := field.Vec2{X: 1.0, Y: 0.8}
	end := field.Vec2{X: 1.0, Y: 2.5}
	without := scene.LineSweep(start, end, 4000, false)
	with := scene.LineSweep(start, end, 4000, true)
	usable := func(s stats.Series, n int) float64 {
		ok := 0
		for i := 0; i < n; i++ {
			x := 1.7 * float64(i) / float64(n-1)
			if s.Interpolate(x) >= 5 {
				ok++
			}
		}
		return float64(ok) / float64(n)
	}
	rows := [][]string{
		{"without", fmt.Sprintf("%.1f dB", field.WorstCase(without)), fmt.Sprintf("%.1f%%", 100*usable(without, 1000))},
		{"with λ/8 diversity", fmt.Sprintf("%.1f dB", field.WorstCase(with)), fmt.Sprintf("%.1f%%", 100*usable(with, 1000))},
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "null depth and usable fraction of the 0.3–2 m sweep (≥5 dB)",
		Header: []string{"Configuration", "Worst SNR", "Usable positions"},
		Rows:   rows,
	})
	return r, nil
}
