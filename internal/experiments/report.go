// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a pure function from the calibrated
// models to a structured Report; the cmd/braidio-bench binary renders
// reports as text and CSV, and the root bench_test.go wraps each one in
// a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"braidio/internal/ascii"
	"braidio/internal/stats"
)

// NamedTable is a titled table of string cells.
type NamedTable struct {
	Name   string
	Header []string
	Rows   [][]string
}

// NamedSeries is a titled (X, Y) curve.
type NamedSeries struct {
	Name string
	Data stats.Series
}

// NamedMatrix is a titled labeled numeric matrix (the device-pair gain
// heatmaps).
type NamedMatrix struct {
	Name      string
	RowLabels []string
	ColLabels []string
	Cells     [][]float64
	// Format is the cell printf format; empty means %.3g.
	Format string
}

// Report is the structured output of one experiment.
type Report struct {
	// ID is the experiment identifier (e.g. "fig15").
	ID string
	// Title describes the artifact reproduced.
	Title string
	// PaperClaim quotes what the paper reports for this artifact.
	PaperClaim string
	// Notes carry measured headline numbers for EXPERIMENTS.md.
	Notes    []string
	Tables   []NamedTable
	Series   []NamedSeries
	Matrices []NamedMatrix
}

// AddNote appends a formatted note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the report as terminal text.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	if r.PaperClaim != "" {
		if _, err := fmt.Fprintf(w, "paper: %s\n", r.PaperClaim); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		if _, err := fmt.Fprintf(w, "\n-- %s --\n", t.Name); err != nil {
			return err
		}
		if err := ascii.Table(w, t.Header, t.Rows); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := ascii.LineChart(w, s.Data, 64, 12, s.Name); err != nil {
			return err
		}
	}
	for _, m := range r.Matrices {
		if _, err := fmt.Fprintf(w, "\n-- %s --\n", m.Name); err != nil {
			return err
		}
		if err := ascii.Heatmap(w, m.RowLabels, m.ColLabels, m.Cells, m.Format); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes each table, series, and matrix of the report as a CSV
// file under dir, named <id>_<slug>.csv. It creates dir if needed.
func (r *Report) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(slug string, f func(io.Writer) error) error {
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", r.ID, slug))
		file, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := f(file); err != nil {
			file.Close()
			return err
		}
		return file.Close()
	}
	for _, t := range r.Tables {
		t := t
		if err := write(slugify(t.Name), func(w io.Writer) error {
			return ascii.CSV(w, t.Header, t.Rows)
		}); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		s := s
		if err := write(slugify(s.Name), func(w io.Writer) error {
			return ascii.SeriesCSV(w, []string{s.Name}, []stats.Series{s.Data})
		}); err != nil {
			return err
		}
	}
	for _, m := range r.Matrices {
		m := m
		if err := write(slugify(m.Name), func(w io.Writer) error {
			header := append([]string{""}, m.ColLabels...)
			rows := make([][]string, len(m.Cells))
			for i, row := range m.Cells {
				cells := make([]string, len(row)+1)
				if i < len(m.RowLabels) {
					cells[0] = m.RowLabels[i]
				}
				for j, v := range row {
					cells[j+1] = fmt.Sprintf("%g", v)
				}
				rows[i] = cells
			}
			return ascii.CSV(w, header, rows)
		}); err != nil {
			return err
		}
	}
	return nil
}

// slugify converts a name to a filename-safe slug.
func slugify(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "-"):
			b.WriteRune('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

// Experiment is a registered reproduction unit.
type Experiment struct {
	// ID identifies the experiment ("table1", "fig15", ...).
	ID string
	// Title summarizes it.
	Title string
	// Run produces the report.
	Run func() (*Report, error)
}

// All returns every experiment in paper order: tables first, then
// figures, then the ablations DESIGN.md calls out.
func All() []Experiment {
	return []Experiment{
		{"table1", "Bluetooth TX/RX power ratios", Table1},
		{"table2", "Commercial reader power and cost", Table2},
		{"table3", "Commercial reader vs Braidio, by problem", Table3},
		{"table4", "Hardware modules of the prototype", Table4},
		{"table5", "Mode-switch overheads", Table5},
		{"fig1", "Battery capacity across mobile devices", Fig1},
		{"fig3", "RF charge pump transient", Fig3},
		{"fig4", "Phase cancellation field map", Fig4},
		{"fig6", "Antenna diversity SNR", Fig6},
		{"fig9", "Efficiency region and dynamic range at 0.3 m", Fig9},
		{"fig12", "BER: Braidio vs commercial reader", Fig12},
		{"fig13", "BER vs distance per mode and bitrate", Fig13},
		{"fig14", "Efficiency regions vs distance", Fig14},
		{"fig15", "Gain matrix vs Bluetooth (unidirectional)", Fig15},
		{"fig16", "Gain matrix vs best single mode", Fig16},
		{"fig17", "Gain matrix vs Bluetooth (bidirectional)", Fig17},
		{"fig18", "Gain vs distance for three device pairs", Fig18},
		{"rxchain", "Waveform-level self-interference rejection", RxChain},
		{"ext-harvest", "Battery-free backscatter via RF harvesting", ExtHarvest},
		{"ext-mobility", "Braided MAC under mobility", ExtMobility},
		{"ext-linecode", "Line coding on the envelope uplink", ExtLineCode},
		{"ext-hub", "Star network: hub plus wearables", ExtHub},
		{"ext-wakeup", "Idle listening vs duty cycling", ExtWakeup},
		{"ext-qam", "16-QAM backscatter", ExtQAM},
		{"ext-inventory", "Multi-tag Gen2 inventory", ExtInventory},
		{"ext-outage", "Fading outage probability", ExtOutage},
		{"ext-pump", "Charge pump stage trade-off", ExtPump},
		{"ext-sensitivity", "Headline sensitivity to hardware parameters", ExtSensitivity},
		{"ext-qos", "QoS-aware carrier offload", ExtQoS},
		{"ablation-scheduler", "Block vs interleaved schedule", AblationScheduler},
		{"ablation-switch", "Switch overhead on/off", AblationSwitchOverhead},
		{"ablation-arq", "Ideal vs ARQ loss accounting", AblationARQ},
		{"ablation-solver", "Closed-form vs LP offload solver", AblationSolver},
		{"ablation-diversity", "Antenna diversity on/off", AblationDiversity},
	}
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
