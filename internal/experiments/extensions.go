package experiments

import (
	"fmt"

	"braidio/internal/energy"
	"braidio/internal/harvest"
	"braidio/internal/hub"
	"braidio/internal/linecode"
	"braidio/internal/mac"
	"braidio/internal/phy"
	"braidio/internal/rng"
	"braidio/internal/rxchain"
	"braidio/internal/sim"
	"braidio/internal/stats"
	"braidio/internal/units"
)

// ExtHarvest is the battery-free extension: with a Moo/WISP-class RF
// harvester at the tag, at what distances does the backscatter
// transmitter run on the reader's carrier alone?
func ExtHarvest() (*Report, error) {
	r := &Report{
		ID:    "ext-harvest",
		Title: "Battery-free backscatter via RF energy harvesting",
		PaperClaim: "extension: Braidio's tag front end is the Moo/WISP charge pump, " +
			"which those platforms run battery-free",
	}
	m := phy.NewModel()
	h := harvest.Default

	rows := [][]string{}
	for _, d := range []units.Meter{0.15, 0.3, 0.5, 0.7, 1.0, 1.5, 2.0} {
		b := harvest.BudgetAt(h, m, d, units.Rate10k)
		rows = append(rows, []string{
			fmt.Sprintf("%.2f m", float64(d)),
			b.Incident.String(),
			b.Harvested.String(),
			b.Draw.String(),
			fmt.Sprintf("%.0f%%", 100*harvest.Uptime(h, m, d, units.Rate10k)),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "harvest budget for a 10 kbps tag",
		Header: []string{"Distance", "Incident", "Harvested", "Tag draw", "Uptime"},
		Rows:   rows,
	})
	for _, rate := range phy.Rates {
		if rge, ok := harvest.SelfSustainingRange(h, m, rate); ok {
			r.AddNote("perpetual operation at %v out to %.2f m", rate, float64(rge))
		} else {
			r.AddNote("no perpetual operation at %v (draw exceeds best-case harvest)", rate)
		}
	}
	r.AddNote("rectifier turn-on (16.7 µW incident) at %.2f m", float64(harvest.FreeSpaceCheck(m)))

	var duty stats.Series
	for d := 0.1; d <= 1.5; d += 0.02 {
		duty = append(duty, stats.Point{X: d, Y: harvest.Uptime(h, m, units.Meter(d), units.Rate10k)})
	}
	r.Series = append(r.Series, NamedSeries{Name: "10 kbps tag uptime vs distance (m)", Data: duty})
	return r, nil
}

// ExtMobility drives the packet-level MAC through a random-waypoint walk
// and compares it with static operation — exercising the §4.2 fallback
// and re-probing machinery under continuous motion.
func ExtMobility() (*Report, error) {
	r := &Report{
		ID:    "ext-mobility",
		Title: "Braided MAC under mobility (random waypoint, walking speed)",
		PaperClaim: "extension of §4.2's dynamics: 'Braidio simply falls back to the " +
			"active mode if the current operating mode is performing poorly'",
	}
	const frames = 4000
	rows := [][]string{}
	for _, sc := range []struct {
		name string
		walk sim.Walk
	}{
		{"static 0.5 m", sim.StaticWalk(0.5)},
		{"static 2.0 m", sim.StaticWalk(2.0)},
		{"walk 0.3–3 m", sim.NewRandomWaypoint(0.3, 3, 1.4, 5, rng.New(42))},
		{"walk 0.3–6 m", sim.NewRandomWaypoint(0.3, 6, 1.4, 5, rng.New(42))},
	} {
		model := phy.NewModel()
		cfg := mac.DefaultConfig(model, sc.walk.DistanceAt(0), 7)
		s, err := mac.NewSession(cfg, energy.NewBattery(0.01), energy.NewBattery(0.01))
		if err != nil {
			return nil, err
		}
		for i := 0; i < frames && !s.Dead(); i++ {
			s.SetDistance(sc.walk.DistanceAt(s.Stats().AirTime))
			if _, err := s.SendFrame(240); err != nil {
				return nil, err
			}
		}
		st := s.Stats()
		tx, rx := s.Drains()
		rows = append(rows, []string{
			sc.name,
			fmt.Sprintf("%d", st.FramesDelivered),
			fmt.Sprintf("%d", st.Fallbacks),
			fmt.Sprintf("%d", st.ModeSwitches),
			fmt.Sprintf("%.2f", s.LossRate()),
			fmt.Sprintf("%v", s.EffectiveGoodput()),
			fmt.Sprintf("%.3g/%.3g J", float64(tx), float64(rx)),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   fmt.Sprintf("%d frames of 240 B through the packet-level MAC", frames),
		Header: []string{"Scenario", "Delivered", "Fallbacks", "Switches", "Loss", "Goodput", "TX/RX drain"},
		Rows:   rows,
	})
	r.AddNote("mobility costs fallbacks and re-probes but the session keeps delivering")
	return r, nil
}

// ExtLineCode demonstrates why backscatter uplinks are line-coded: under
// an aggressive high-pass cutoff, uncoded (NRZ) data with long runs
// wanders the baseline through the comparator threshold, while
// Manchester and FM0 (the EPC Gen2 tag encoding) bound every run at two
// symbols and decode cleanly.
func ExtLineCode() (*Report, error) {
	r := &Report{
		ID:    "ext-linecode",
		Title: "Line coding on the envelope-detected uplink",
		PaperClaim: "extension: the §3.1 high-pass cancellation implies the tag's " +
			"bit stream must be DC-balanced (EPC Gen2 uses FM0/Miller)",
	}
	// Pathological payload: a long run of ones between alternating
	// sections.
	data := make([]byte, 0, 400)
	for i := 0; i < 100; i++ {
		data = append(data, byte(i%2))
	}
	for i := 0; i < 200; i++ {
		data = append(data, 1)
	}
	for i := 0; i < 100; i++ {
		data = append(data, byte(i%2))
	}

	codes := []linecode.Code{linecode.NRZ, linecode.Manchester, linecode.FM0}
	cfgs := make([]rxchain.CodedConfig, len(codes))
	for i, code := range codes {
		cfgs[i] = rxchain.DefaultCodedConfig(units.Rate100k, 5)
		cfgs[i].Code = code
	}
	// Three independent coded chains over the same payload — run them on
	// the shared pool.
	results, err := rxchain.RunCodedAll(cfgs, data, 0, 0)
	if err != nil {
		return nil, err
	}
	rows := [][]string{}
	for i, code := range codes {
		symbols := linecode.Encode(code, data)
		rows = append(rows, []string{
			code.String(),
			fmt.Sprintf("%d", code.SymbolsPerBit()),
			fmt.Sprintf("%d", linecode.MaxRunLength(symbols)),
			fmt.Sprintf("%.3f", linecode.DCBalance(symbols)),
			fmt.Sprintf("%.3g", results[i].BER()),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "400 bits with a 200-bit run of ones, high-pass cutoff at rate/4",
		Header: []string{"Code", "Symbols/bit", "Max run", "DC balance", "BER"},
		Rows:   rows,
	})
	r.AddNote("balanced codes trade half the raw rate for immunity to baseline wander")
	return r, nil
}

// ExtHub runs the star-network extension: one phone hub serving three
// wearables for a day, reporting who paid what.
func ExtHub() (*Report, error) {
	r := &Report{
		ID:    "ext-hub",
		Title: "Star network: one hub, three wearables, 24 hours",
		PaperClaim: "extension of the introduction's motivation: offload the cost " +
			"of a whole body-area network onto the phone",
	}
	phone, _ := energy.DeviceByName("iPhone 6S")
	h := hub.New(phone, nil)
	members := []hub.Member{
		{Device: mustDevice("Nike Fuel Band"), Distance: 0.4, Load: 1000},
		{Device: mustDevice("Apple Watch"), Distance: 0.4, Load: 5000},
		{Device: mustDevice("Pivothead"), Distance: 0.6, Load: 200000},
	}
	for _, m := range members {
		if err := h.Add(m); err != nil {
			return nil, err
		}
	}
	res, err := h.Run(24*3600, 24)
	if err != nil {
		return nil, err
	}
	rows := [][]string{}
	for _, mr := range res.Members {
		rows = append(rows, []string{
			mr.Member.Device.Name,
			fmt.Sprintf("%.0f MB", mr.Bits/8e6),
			fmt.Sprintf("%.4g J", float64(mr.MemberDrain)),
			fmt.Sprintf("%.4g J", float64(mr.HubDrain)),
			fmt.Sprintf("%.0f%%", 100*mr.HubShare()),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "per-member energy split over 24 h",
		Header: []string{"Wearable", "Delivered", "Member J", "Hub J", "Hub share"},
		Rows:   rows,
	})
	phoneBudget := float64(phone.Capacity.Joules())
	r.AddNote("hub radio bill: %.3g J/day = %.1f%% of its battery", float64(res.HubDrain), 100*float64(res.HubDrain)/phoneBudget)
	return r, nil
}

// mustDevice fetches a catalog device, panicking on typos (experiment
// definitions are static).
func mustDevice(name string) energy.Device {
	d, ok := energy.DeviceByName(name)
	if !ok {
		panic("experiments: unknown device " + name)
	}
	return d
}
