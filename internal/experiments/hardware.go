package experiments

import (
	"fmt"

	"braidio/internal/analog"
	"braidio/internal/fading"
	"braidio/internal/rxchain"
	"braidio/internal/units"
)

// Table3 reproduces Table 3: the qualitative comparison between a
// commercial reader's architecture and Braidio's, with the quantitative
// anchors this module models for each row.
func Table3() (*Report, error) {
	r := &Report{
		ID:         "table3",
		Title:      "Commercial reader vs Braidio, by problem",
		PaperClaim: "Braidio trades sensitivity for power and complexity on all three fronts",
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "Table 3",
		Header: []string{"Problem", "Commercial reader", "Braidio", "Modeled by"},
		Rows: [][]string{
			{
				"Phase cancellation",
				"IQ orthogonal receiver (two mixer/filter/IF chains)",
				"λ/8 antenna diversity via a <10 µW switch",
				"internal/field, ablation-diversity",
			},
			{
				"Signal amplification",
				"RF LNA + IF amp + DSP (better sensitivity)",
				"charge pump + instrumentation amp (lower power)",
				"internal/chargepump, internal/analog",
			},
			{
				"Frequency selection",
				"mixer + low-pass filter",
				"passive SAW filter (zero power, in-band exposure)",
				"analog.SAWFilter",
			},
		},
	})
	bare := analog.DefaultChain()
	bare.Amp = nil
	amped := analog.DefaultChain()
	r.AddNote("sensitivity cost of the trade: bare detector %.1f dBm, with amp %.1f dBm, commercial reader %.1f dBm (calibrated)",
		float64(bare.Sensitivity(units.Rate100k)), float64(amped.Sensitivity(units.Rate100k)), -71.4)
	r.AddNote("power cost of the commercial approach: %.0f mW vs Braidio's %.0f mW", 640.0, 129.0)
	return r, nil
}

// Table4 reproduces Table 4: the hardware modules of the Braidio board
// and where each is modeled.
func Table4() (*Report, error) {
	r := &Report{
		ID:         "table4",
		Title:      "Hardware modules of the Braidio prototype",
		PaperClaim: "an active radio plus 'a tag's worth' of extra components",
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "Table 4",
		Header: []string{"Module", "Part", "Key property", "Modeled by"},
		Rows: [][]string{
			{"Controller", "ATMEGA 328P", "2 mA @ 8 MHz", "folded into mode power draws (phy)"},
			{"Carrier emitter", "SI4432", "125 mW @ 13 dBm", "phy.CarrierPower + mode powers"},
			{"Passive receiver", "Moo/WISP front end", "reduced Cs/Cp for bitrate", "chargepump (settling test)"},
			{"Baseband amplifier", "INA2331", "1.8 pF input capacitance", "analog.InstAmp"},
			{"Antenna switch", "SKY13267", "<10 µW SPDT", "analog.AntennaSwitch"},
			{"Chip antennas", "ANT1204LL05R ×2", "λ/8 spacing, 12 mm", "rf.ChipAntenna, field.PaperScene"},
			{"SAW filter", "SF2049E", "50 dB @ 800 MHz, >30 dB @ 2.4 GHz", "analog.SAWFilter"},
			{"Active radio", "SPBT2632C2A", "Bluetooth over serial", "phy active mode powers"},
		},
	})
	r.AddNote("switch power: %v (paper: <10 µW)", analog.DefaultSwitch.Power)
	r.AddNote("amp input capacitance: %.1f pF (paper: 1.8 pF)", analog.DefaultInstAmp.InputCapacitance*1e12)
	return r, nil
}

// RxChain demonstrates §3.1 end to end at the waveform level: the
// high-pass-filtered envelope receiver rejecting carrier
// self-interference 50× stronger than the signal, and the ablation where
// removing the filter destroys reception.
func RxChain() (*Report, error) {
	r := &Report{
		ID:         "rxchain",
		Title:      "Waveform-level passive receive chain (§3.1)",
		PaperClaim: "self-interference presents as DC / <1 kHz and is removed by high-pass filtering",
	}
	cases := []struct {
		name string
		cfg  func() rxchain.Config
	}{
		{"no interference", func() rxchain.Config {
			cfg := rxchain.DefaultConfig(units.Rate100k, 1)
			cfg.SelfInterference = fading.SelfInterference{}
			return cfg
		}},
		{"static SI ×50", func() rxchain.Config {
			return rxchain.DefaultConfig(units.Rate100k, 2)
		}},
		{"drifting SI ×50 (2 ms coherence)", func() rxchain.Config {
			cfg := rxchain.DefaultConfig(units.Rate100k, 3)
			cfg.SelfInterference = fading.SelfInterference{Level: 1, DriftFraction: 0.1, CoherenceTime: 2e-3}
			return cfg
		}},
		{"static SI ×50, no high-pass (ablation)", func() rxchain.Config {
			cfg := rxchain.DefaultConfig(units.Rate100k, 4)
			cfg.HighPass = analog.HighPass{}
			return cfg
		}},
	}
	// The four scenarios are independent waveform runs with their own
	// seeds — fan them out over the shared pool.
	cfgs := make([]rxchain.Config, len(cases))
	for i, c := range cases {
		cfgs[i] = c.cfg()
	}
	results, err := rxchain.RunAll(cfgs, 50000, 0)
	if err != nil {
		return nil, err
	}
	rows := [][]string{}
	for i, c := range cases {
		res := results[i]
		rows = append(rows, []string{
			c.name,
			fmt.Sprintf("%.2g", res.BER()),
			fmt.Sprintf("%.3g V", res.ResidualDC),
			fmt.Sprintf("%.3g V", res.SwingAtComparator),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "50k bits through the chain (20 mV signal, 1 V carrier leakage)",
		Header: []string{"Scenario", "BER", "Residual DC", "Eye opening"},
		Rows:   rows,
	})
	r.AddNote("the filter buys ~50 dB of interference rejection for zero active power")
	return r, nil
}
