package experiments

import (
	"fmt"
	"math"

	"braidio/internal/chargepump"
	"braidio/internal/inventory"
	"braidio/internal/phy"
	"braidio/internal/rng"
	"braidio/internal/stats"
	"braidio/internal/units"
)

// ExtInventory runs the multi-tag extension: one Braidio board as a
// Gen2-style reader enumerating a swarm of backscatter tags with the Q
// algorithm.
func ExtInventory() (*Report, error) {
	r := &Report{
		ID:    "ext-inventory",
		Title: "Multi-tag inventory with the Gen2 Q algorithm",
		PaperClaim: "extension: the AS3993 baseline 'supports direct mode and makes it " +
			"possible to implement customized Backscatter protocols' — here is one",
	}
	rows := [][]string{}
	for _, n := range []int{1, 10, 100, 1000} {
		res, err := inventory.Run(inventory.DefaultConfig(units.Rate100k, 1), n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.Slots),
			fmt.Sprintf("%.2f", res.SlotsPerTag()),
			fmt.Sprintf("%.2f", res.Efficiency()),
			fmt.Sprintf("%.3g s", float64(res.Duration)),
			fmt.Sprintf("%.3g J", float64(res.ReaderEnergy)),
			fmt.Sprintf("%.3g µJ", float64(res.TagEnergy)*1e6),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "inventory rounds at 100 kbps",
		Header: []string{"Tags", "Slots", "Slots/tag", "Efficiency", "Airtime", "Reader J", "Per-tag energy"},
		Rows:   rows,
	})
	r.AddNote("slotted ALOHA's oracle bound is 1/e ≈ 0.37 successes/slot; the Q algorithm lands nearby without knowing the population")
	return r, nil
}

// ExtOutage quantifies what multipath fading does to the clean-room
// regime boundaries: for each distance, the fraction of Rician
// block-fading realizations in which each mode still decodes.
func ExtOutage() (*Report, error) {
	r := &Report{
		ID:    "ext-outage",
		Title: "Mode outage probability under Rician fading",
		PaperClaim: "extension: the paper clears the room ('we clear the area to " +
			"minimize the effect of environmental reflections'); this is what reflections cost",
	}
	base := phy.NewModel()
	const draws = 2000
	kFactors := []struct {
		name string
		k    float64
	}{{"K=10 (strong LOS)", 10}, {"K=2 (cluttered)", 2}}

	for _, kf := range kFactors {
		var series stats.Series
		stream := rng.New(77)
		nu := math.Sqrt(kf.k / (kf.k + 1))
		sigma := math.Sqrt(1 / (2 * (kf.k + 1)))
		for d := 0.3; d <= 3.0; d += 0.15 {
			outages := 0
			for i := 0; i < draws; i++ {
				env := stream.Rician(nu, sigma)
				faded := *base
				// A fade multiplies the one-way amplitude by env; the
				// round-trip backscatter link sees it twice.
				faded.FadeMargin = units.DB(-40 * math.Log10(env))
				if !faded.Available(phy.ModeBackscatter, units.Meter(d)) {
					outages++
				}
			}
			series = append(series, stats.Point{X: d, Y: float64(outages) / draws})
		}
		r.Series = append(r.Series, NamedSeries{
			Name: fmt.Sprintf("backscatter outage vs m, %s", kf.name),
			Data: series,
		})
		edge, ok := series.CrossAbove(0.05)
		if ok {
			r.AddNote("%s: 5%% backscatter outage at %.2f m (clean-room range 2.4 m)", kf.name, edge)
		} else {
			r.AddNote("%s: outage stays under 5%% across the sweep", kf.name)
		}
	}
	r.AddNote("the §4.2 fallback machinery exists exactly for these realizations")
	return r, nil
}

// ExtPump sweeps the charge pump's stage count: boost versus loaded sag
// — the sensitivity/impedance trade §3.2 describes.
func ExtPump() (*Report, error) {
	r := &Report{
		ID:    "ext-pump",
		Title: "Charge pump stage-count trade-off",
		PaperClaim: "§3.2: 'a charge pump can boost the signal by 2N times ... but it " +
			"also increases the output impedance significantly'",
	}
	rows := [][]string{}
	for n := 1; n <= 6; n++ {
		p := chargepump.Default()
		p.Stages = n
		// Small-signal detector regime: the Schottky operates square-law
		// below its drop, so the ideal-diode (zero-drop) analytic model
		// is the right envelope here.
		p.DiodeDrop = 0
		open := p.OutputDC(0.05) // a weak 50 mV RF input
		z := p.OutputImpedance(1e6)
		// Sag against a 100 kΩ load (a mediocre amplifier input).
		p.LoadResistance = 100e3
		loaded := p.LoadedOutput(0.05, 1e6)
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f mV", open*1e3),
			fmt.Sprintf("%.0f kΩ", z/1e3),
			fmt.Sprintf("%.1f mV", loaded*1e3),
		})
	}
	r.Tables = append(r.Tables, NamedTable{
		Name:   "Dickson pump vs stages (50 mV input, ideal-diode analytic model)",
		Header: []string{"Stages", "Open-circuit out", "Output impedance", "Into 100 kΩ"},
		Rows:   rows,
	})
	r.AddNote("more stages only help into a high-impedance load — the INA2331's near-open input is what makes N>1 useful")
	return r, nil
}
