package experiments

import (
	"fmt"

	"braidio/internal/energy"
	"braidio/internal/phy"
	"braidio/internal/sim"
	"braidio/internal/stats"
	"braidio/internal/units"
)

// matrixDistance is the separation for the device-pair matrices: "the
// transmitter and receiver are less than one meter apart, so all modes
// can operate at their peak bitrate".
const matrixDistance units.Meter = 0.5

func deviceLabels() []string {
	labels := make([]string, len(energy.Catalog))
	for i, d := range energy.Catalog {
		labels[i] = d.Name
	}
	return labels
}

func matrixReport(id, title, claim string, build func() (*sim.Matrix, error)) (*Report, error) {
	mat, err := build()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: id, Title: title, PaperClaim: claim}
	r.Matrices = append(r.Matrices, NamedMatrix{
		Name:      "gain (column device transmits to row device)",
		RowLabels: deviceLabels(),
		ColLabels: deviceLabels(),
		Cells:     mat.Cells,
	})
	r.AddNote("max gain = %.3g", mat.Max())
	diag := mat.Diagonal()
	r.AddNote("diagonal gain = %.3g .. %.3g", stats.Percentile(diag, 0), stats.Percentile(diag, 100))
	return r, nil
}

// Fig15 reproduces Fig. 15: the 10×10 Braidio-vs-Bluetooth gain matrix
// for unidirectional transfers.
func Fig15() (*Report, error) {
	r, err := matrixReport("fig15",
		"Performance gain over Bluetooth (unidirectional)",
		"up to 397× at extreme asymmetry; 1.43× on the equal-energy diagonal",
		func() (*sim.Matrix, error) {
			return sim.GainMatrixBluetooth(phy.NewModel(), matrixDistance, energy.Catalog)
		})
	if err != nil {
		return nil, err
	}
	m := phy.NewModel()
	up, errUp := sim.RunPair(m, matrixDistance, energy.Catalog[0], energy.Catalog[len(energy.Catalog)-1])
	down, errDown := sim.RunPair(m, matrixDistance, energy.Catalog[len(energy.Catalog)-1], energy.Catalog[0])
	if errUp == nil && errDown == nil {
		r.AddNote("FuelBand→MBP15 %.3g× (paper 397), MBP15→FuelBand %.3g× (paper 299)",
			up.GainVsBluetooth(), down.GainVsBluetooth())
	}
	return r, nil
}

// Fig16 reproduces Fig. 16: Braidio against the best of its own modes in
// isolation.
func Fig16() (*Report, error) {
	return matrixReport("fig16",
		"Performance gain over the best single mode",
		"switching provides up to 78% improvement; near 1× at extreme asymmetry; 1.43× on the diagonal",
		func() (*sim.Matrix, error) {
			return sim.GainMatrixBestMode(phy.NewModel(), matrixDistance, energy.Catalog)
		})
}

// Fig17 reproduces Fig. 17: the bidirectional (role-swapping) gain
// matrix.
func Fig17() (*Report, error) {
	return matrixReport("fig17",
		"Performance gain over Bluetooth (bidirectional)",
		"up to 368×; slightly better than unidirectional at high asymmetry",
		func() (*sim.Matrix, error) {
			return sim.GainMatrixBidirectional(phy.NewModel(), matrixDistance, energy.Catalog)
		})
}

// fig18Pairs are the three device pairs of Fig. 18, swept in both
// directions.
var fig18Pairs = [][2]string{
	{"iPhone 6S", "Apple Watch"},
	{"Surface Book", "Nexus 6P"},
	{"iPhone 6S", "Nike Fuel Band"},
}

// Fig18 reproduces Fig. 18: gain over Bluetooth vs distance for three
// device pairs, both directions.
func Fig18() (*Report, error) {
	r := &Report{
		ID:         "fig18",
		Title:      "Performance gain over Bluetooth vs distance",
		PaperClaim: "strong at short range; knees as backscatter slows and dies (0.9/1.8/2.4 m); only receiver-favoring gains beyond 2.4 m; ≈1× beyond ~5 m",
	}
	m := phy.NewModel()
	distances := []units.Meter{}
	for d := 0.4; d <= 6.0; d += 0.2 {
		distances = append(distances, units.Meter(d))
	}
	for _, pair := range fig18Pairs {
		a, _ := energy.DeviceByName(pair[0])
		b, _ := energy.DeviceByName(pair[1])
		for _, dir := range []struct{ tx, rx energy.Device }{{a, b}, {b, a}} {
			s, err := sim.DistanceSweep(m, dir.tx, dir.rx, distances)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("%s to %s", dir.tx.Name, dir.rx.Name)
			r.Series = append(r.Series, NamedSeries{Name: name + " (m vs gain)", Data: s})
			r.AddNote("%s: %.3g× at 0.4 m, %.3g× at 3 m, %.3g× at 6 m",
				name, s.Interpolate(0.4), s.Interpolate(3), s.Interpolate(6))
		}
	}
	return r, nil
}
