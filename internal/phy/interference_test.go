package phy

import (
	"math"
	"testing"

	"braidio/internal/units"
)

func TestZeroInterferenceModelBitIdentical(t *testing.T) {
	// A model with Interference explicitly zero must characterize
	// bit-identically to the pre-interference model at every distance —
	// the gate in rf.SINR, verified through the full link pipeline.
	clean := NewModel()
	zeroed := NewModel()
	zeroed.Interference = 0
	for _, d := range []units.Meter{0.1, 0.3, 0.9, 1.8, 2.4, 3.9, 5.1, 10, 100, 1772} {
		a := clean.Characterize(d)
		b := zeroed.Characterize(d)
		if len(a) != len(b) {
			t.Fatalf("d=%v: %d links vs %d", float64(d), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("d=%v link %d: %+v != %+v", float64(d), i, a[i], b[i])
			}
		}
		for _, mode := range Modes {
			for _, r := range Rates {
				sa := clean.SNR(mode, r, d)
				sb := zeroed.SNR(mode, r, d)
				if math.Float64bits(float64(sa)) != math.Float64bits(float64(sb)) {
					t.Errorf("d=%v %v@%v: SNR %v != %v", float64(d), mode, r, sa, sb)
				}
			}
		}
	}
}

func TestInterferenceDegradesLinks(t *testing.T) {
	m := NewModel()
	noisy := NewModel()
	noisy.Interference = 1e-6 // 1 nW of co-channel carrier at the receiver
	for _, mode := range Modes {
		for _, r := range Rates {
			clean := m.SNR(mode, r, 1)
			dirty := noisy.SNR(mode, r, 1)
			if !(dirty < clean) {
				t.Errorf("%v@%v: interfered SNR %v not below clean %v", mode, r, dirty, clean)
			}
		}
	}
	// Strong interference shrinks operating range, in every mode.
	jammed := NewModel()
	jammed.Interference = 1e-3
	for _, mode := range Modes {
		if rj, rc := jammed.Range(mode, units.Rate10k), m.Range(mode, units.Rate10k); !(rj < rc) {
			t.Errorf("%v: jammed range %v not below clean %v", mode, float64(rj), float64(rc))
		}
	}
}

func TestSharedCarrierLinkBudget(t *testing.T) {
	m := NewModel()
	// A donor carrier right next to the tag (0.3 m forward) with the data
	// hop at 0.3 m reverse: comfortably inside the bistatic budget.
	l, ok := m.SharedCarrierLink(0.3, 0.3)
	if !ok {
		t.Fatal("shared-carrier link closed at 0.3/0.3 m should be available")
	}
	if l.Mode != ModeBackscatter {
		t.Errorf("mode = %v, want backscatter", l.Mode)
	}
	// The hub-side cost is the passive envelope chain, not the 129 mW
	// backscatter reader — the carrier bill left this braid.
	mono := m.Characterize(0.3)
	var monoBS *ModeLink
	for i := range mono {
		if mono[i].Mode == ModeBackscatter {
			monoBS = &mono[i]
		}
	}
	if monoBS == nil {
		t.Fatal("no monostatic backscatter link at 0.3 m")
	}
	if !(l.R < monoBS.R/100) {
		t.Errorf("shared-carrier hub cost %v not ≪ monostatic %v", l.R, monoBS.R)
	}
	// Same rate as the monostatic link here (0.09 m² path product at
	// 0.3/0.3 matches the 0.3 m monostatic product), so tag cost is the
	// same modulator.
	if l.Rate == monoBS.Rate && l.T != monoBS.T {
		t.Errorf("tag cost %v != monostatic %v at equal rate", l.T, monoBS.T)
	}

	// A close donor extends reach past the monostatic range: at 2.6 m the
	// monostatic round trip (6.76 m² path product) is dead, but a donor
	// 0.3 m from the tag (0.78 m² product) still closes the link.
	if _, ok := m.BestRate(ModeBackscatter, 2.6); ok {
		t.Fatal("monostatic backscatter unexpectedly alive at 2.6 m")
	}
	if _, ok := m.SharedCarrierLink(0.3, 2.6); !ok {
		t.Error("shared carrier 0.3 m from tag should reach a hub at 2.6 m")
	}

	// And a hopeless geometry refuses.
	if _, ok := m.SharedCarrierLink(50, 50); ok {
		t.Error("shared-carrier link at 50/50 m should be out of range")
	}
}

func TestSharedCarrierLinkInterference(t *testing.T) {
	m := NewModel()
	clean, ok := m.SharedCarrierLink(0.5, 1.0)
	if !ok {
		t.Fatal("clean shared link should close at 0.5/1.0 m")
	}
	noisy := NewModel()
	noisy.Interference = 1e-7
	dirty, ok := noisy.SharedCarrierLink(0.5, 1.0)
	if ok && dirty.Rate == clean.Rate && !(dirty.BER >= clean.BER) {
		t.Errorf("interference lowered BER: %v < %v", dirty.BER, clean.BER)
	}
	// Enough interference kills the bistatic link entirely.
	jammed := NewModel()
	jammed.Interference = 1
	if _, ok := jammed.SharedCarrierLink(0.5, 1.0); ok {
		t.Error("1 mW of interference should kill the shared-carrier link")
	}
}
