// Package phy models Braidio's physical layer: the three operating modes
// (named, as in §4, after where the carrier lives), their link budgets,
// bit error rates, achievable bitrates at a given distance, per-bit
// energy costs, and the operating regimes of Fig. 8.
//
// The calibration constants binding this model to the paper's measured
// prototype are collected in calibration.go.
package phy

import (
	"fmt"
	"math"

	"braidio/internal/frame"
	"braidio/internal/modem"
	"braidio/internal/rf"
	"braidio/internal/units"
)

// Mode is one of Braidio's three operating modes, named after the
// receiver state (§4): in Active both ends run their carrier; in Passive
// only the transmitter does (the receiver uses the envelope detector); in
// Backscatter only the receiver does (the transmitter is a tag).
type Mode int

// The three modes.
const (
	ModeActive Mode = iota
	ModePassive
	ModeBackscatter
)

// Modes lists all modes in canonical order (the order of the p_i in
// Eq. 1).
var Modes = [3]Mode{ModeActive, ModePassive, ModeBackscatter}

// NumModes is the number of operating modes — the stride of the
// structure-of-arrays link columns and of per-mode accounting arrays
// indexed by Mode.
const NumModes = len(Modes)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeActive:
		return "active"
	case ModePassive:
		return "passive"
	case ModeBackscatter:
		return "backscatter"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Scheme returns the detection scheme the mode uses at its typical
// operating point; SchemeAt refines it per rate.
func (m Mode) Scheme() modem.Scheme {
	return SchemeAt(m, units.Rate100k)
}

// SchemeAt returns the detection scheme for a mode at a rate. The active
// link is a coherent radio; the envelope-detected links are non-coherent
// OOK — except the 1 Mbps backscatter uplink, where the tag's modulator
// runs an FSK clock ("a few tens of kHz for ASK modulation, and around
// several MHz for FSK modulation", §2.2).
func SchemeAt(m Mode, r units.BitRate) modem.Scheme {
	switch {
	case m == ModeActive:
		return modem.PSKCoherent
	case m == ModeBackscatter && r >= units.Rate1M:
		return modem.FSKNonCoherent
	default:
		return modem.OOKNonCoherent
	}
}

// Rates lists the calibrated operating bitrates, fastest first.
var Rates = [3]units.BitRate{units.Rate1M, units.Rate100k, units.Rate10k}

// TXPower returns the data transmitter's draw in a mode at a rate.
func TXPower(m Mode, r units.BitRate) units.Watt {
	switch m {
	case ModeActive:
		return ActiveTXPower
	case ModePassive:
		return PassiveTXPower
	case ModeBackscatter:
		return BackscatterTXPower(r)
	default:
		panic(fmt.Sprintf("phy: unknown mode %d", int(m)))
	}
}

// RXPower returns the data receiver's draw in a mode at a rate.
func RXPower(m Mode, r units.BitRate) units.Watt {
	switch m {
	case ModeActive:
		return ActiveRXPower
	case ModePassive:
		return PassiveRXPower(r)
	case ModeBackscatter:
		return BackscatterRXPower
	default:
		panic(fmt.Sprintf("phy: unknown mode %d", int(m)))
	}
}

// Sensitivity returns the minimum received power for the mode/rate to
// meet RangeBERTarget.
func Sensitivity(m Mode, r units.BitRate) units.DBm {
	switch m {
	case ModeActive:
		return ActiveSensitivity
	case ModePassive:
		return PassiveSensitivity(r)
	case ModeBackscatter:
		return BackscatterSensitivity(r)
	default:
		panic(fmt.Sprintf("phy: unknown mode %d", int(m)))
	}
}

// Model is the link-level channel model between two Braidio boards.
type Model struct {
	// OneWay is the budget of the active and passive links.
	OneWay rf.Link
	// RoundTrip is the monostatic backscatter budget.
	RoundTrip rf.BackscatterLink
	// PayloadLen sets the framing used for goodput and per-bit costs.
	PayloadLen int
	// FadeMargin derates every link, modeling multipath beyond the
	// paper's cleared room. Zero for the paper's setting.
	FadeMargin units.DB
	// Retransmit, when true, derates goodput by the frame error rate
	// (ARQ semantics: every corrupted frame is resent whole). The
	// paper's §6.3 simulator counts link throughput at the operating
	// BER without ARQ accounting, so ideal accounting is the default;
	// the packet-level MAC and the ARQ ablation bench set this.
	Retransmit bool
	// Interference is the total co-channel interference power arriving
	// at the data receiver, in linear milliwatts — the aggregate of
	// other hubs' concurrent carriers as computed by the network
	// scheduler (internal/net). Zero (the default) is the isolated-pair
	// setting and leaves every SNR bit-identical to the
	// interference-free model (rf.SINR gates on it rather than
	// recomputing). Kept as a plain float so Model stays comparable —
	// the process-global link cache keys on the Model value.
	Interference float64
}

// NewModel returns the calibrated model of two Braidio boards in free
// space (the paper's cleared 6 m × 6 m room).
func NewModel() *Model {
	oneWay := rf.NewLink()
	oneWay.ExtraLoss = FrontEndLoss
	rt := rf.NewBackscatterLink()
	rt.ReflectionLoss = BackscatterReflectionLoss
	rt.Reverse.ExtraLoss = FrontEndLoss
	return &Model{OneWay: oneWay, RoundTrip: rt, PayloadLen: frame.DefaultPayload}
}

// ReceivedPower returns the signal power arriving at the data receiver in
// the given mode at distance d.
func (m *Model) ReceivedPower(mode Mode, d units.Meter) units.DBm {
	var rx units.DBm
	switch mode {
	case ModeActive, ModePassive:
		rx = m.OneWay.Received(CarrierPower, d)
	case ModeBackscatter:
		rx = m.RoundTrip.ReceivedMonostatic(CarrierPower, d)
	default:
		panic(fmt.Sprintf("phy: unknown mode %d", int(mode)))
	}
	return rx.Sub(m.FadeMargin)
}

// snrTargetDB returns the SNR (dB) a scheme needs to hit RangeBERTarget;
// the effective noise floor of a mode/rate sits that far below its
// sensitivity.
func snrTargetDB(mode Mode, r units.BitRate) units.DB {
	return units.DBFromRatio(modem.SNRForBER(SchemeAt(mode, r), RangeBERTarget))
}

// SNR returns the effective per-bit SINR (dB) for a mode/rate at distance
// d: received power over the mode's calibrated effective noise floor,
// raised by the model's co-channel Interference when one is set. With
// zero Interference this is the plain SNR, bit-identical to the
// pre-interference model.
func (m *Model) SNR(mode Mode, r units.BitRate, d units.Meter) units.DB {
	noise := Sensitivity(mode, r).Sub(snrTargetDB(mode, r))
	return rf.SINR(m.ReceivedPower(mode, d), noise, m.Interference)
}

// BER returns the analytic bit error rate for a mode/rate at distance d.
func (m *Model) BER(mode Mode, r units.BitRate, d units.Meter) float64 {
	return modem.BERFromDB(SchemeAt(mode, r), m.SNR(mode, r, d))
}

// Available reports whether a mode supports at least its slowest bitrate
// at distance d.
func (m *Model) Available(mode Mode, d units.Meter) bool {
	_, ok := m.BestRate(mode, d)
	return ok
}

// BestRate returns the fastest bitrate whose BER at distance d meets
// RangeBERTarget, and whether any does. The active link only runs at
// 1 Mbps.
func (m *Model) BestRate(mode Mode, d units.Meter) (units.BitRate, bool) {
	if mode == ModeActive {
		if m.BER(mode, units.Rate1M, d) <= RangeBERTarget {
			return units.Rate1M, true
		}
		return 0, false
	}
	for _, r := range Rates {
		if m.BER(mode, r, d) <= RangeBERTarget {
			return r, true
		}
	}
	return 0, false
}

// Range returns the maximum distance at which a mode/rate meets
// RangeBERTarget. Co-channel Interference raises the effective noise
// floor, so it lifts the required received power by the same factor the
// SNR path loses — keeping Range consistent with BestRate under
// interference (zero Interference leaves the sensitivity untouched).
func (m *Model) Range(mode Mode, r units.BitRate) units.Meter {
	rx := func(d units.Meter) units.DBm { return m.ReceivedPower(mode, d) }
	sens := Sensitivity(mode, r)
	if m.Interference > 0 {
		noiseMW := math.Pow(10, float64(sens.Sub(snrTargetDB(mode, r)))/10)
		sens = sens.Add(units.DB(10 * math.Log10(1+m.Interference/noiseMW)))
	}
	d, ok := rf.RangeForSensitivity(rx, sens, 0.01, 10000)
	if !ok {
		return 0
	}
	return d
}

// Regime is an operating regime of Fig. 8.
type Regime int

// The regimes: A has all three links, B loses backscatter, C has only the
// active link, and OutOfRange has nothing.
const (
	RegimeA Regime = iota
	RegimeB
	RegimeC
	OutOfRange
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case RegimeA:
		return "A (all links)"
	case RegimeB:
		return "B (active+passive)"
	case RegimeC:
		return "C (active only)"
	case OutOfRange:
		return "out of range"
	default:
		return fmt.Sprintf("regime(%d)", int(r))
	}
}

// Regime classifies the distance per Fig. 8.
func (m *Model) Regime(d units.Meter) Regime {
	switch {
	case m.Available(ModeBackscatter, d):
		return RegimeA
	case m.Available(ModePassive, d):
		return RegimeB
	case m.Available(ModeActive, d):
		return RegimeC
	default:
		return OutOfRange
	}
}

// ModeLink characterizes one available mode at a distance: its best rate,
// error rate, delivered goodput, and per-useful-bit energy costs at both
// ends — the (T_i, R_i) of Eq. 1.
type ModeLink struct {
	Mode Mode
	Rate units.BitRate
	BER  float64
	// Good is the delivered payload bitrate, including framing and
	// protocol duty efficiency (and ARQ derating when the model has
	// Retransmit set).
	Good units.BitRate
	// T and R are joules per delivered payload bit at the transmitter
	// and receiver.
	T, R units.JoulesPerBit
}

// goodput computes the delivered payload bitrate for a mode/rate/BER
// under the model's loss accounting. Ideal accounting treats the link as
// binary — full throughput below the range BER target, dead above it —
// matching the paper's simulator; ARQ accounting derates continuously by
// the frame error rate instead.
func (m *Model) goodput(mode Mode, r units.BitRate, ber float64) units.BitRate {
	g := float64(r) * frame.Efficiency(m.PayloadLen) * ProtocolEfficiency(mode)
	if m.Retransmit {
		g *= 1 - frame.FrameErrorRate(ber, m.PayloadLen)
	} else if ber > RangeBERTarget {
		return 0
	}
	return units.BitRate(g)
}

// costs computes per-useful-bit costs for a mode/rate/BER.
func (m *Model) costs(mode Mode, r units.BitRate, ber float64) (tx, rx units.JoulesPerBit) {
	good := m.goodput(mode, r, ber)
	if good <= 0 {
		return units.JoulesPerBit(math.Inf(1)), units.JoulesPerBit(math.Inf(1))
	}
	return units.PerBit(TXPower(mode, r), good), units.PerBit(RXPower(mode, r), good)
}

// Characterize returns the available modes at distance d with their best
// rates and per-bit costs, in canonical mode order. Unavailable modes are
// omitted.
func (m *Model) Characterize(d units.Meter) []ModeLink {
	var out []ModeLink
	for _, mode := range Modes {
		r, ok := m.BestRate(mode, d)
		if !ok {
			continue
		}
		ber := m.BER(mode, r, d)
		t, rx := m.costs(mode, r, ber)
		out = append(out, ModeLink{Mode: mode, Rate: r, BER: ber, Good: m.goodput(mode, r, ber), T: t, R: rx})
	}
	return out
}

// CharacterizeInto is Characterize appending into caller-owned storage:
// dst is truncated and refilled, so a caller reusing one buffer across
// distances characterizes without heap allocation once the buffer has
// grown to NumModes capacity. The entries are bit-identical to
// Characterize's (both run the same per-mode computations in canonical
// order).
func (m *Model) CharacterizeInto(dst []ModeLink, d units.Meter) []ModeLink {
	dst = dst[:0]
	for _, mode := range Modes {
		r, ok := m.BestRate(mode, d)
		if !ok {
			continue
		}
		ber := m.BER(mode, r, d)
		t, rx := m.costs(mode, r, ber)
		dst = append(dst, ModeLink{Mode: mode, Rate: r, BER: ber, Good: m.goodput(mode, r, ber), T: t, R: rx})
	}
	return dst
}

// LinkColumns is the structure-of-arrays projection of a batch of link
// characterizations: one row of NumModes-stride columns per member, flat
// float64 (and small scalar) arrays instead of per-member []ModeLink
// slices. Batch kernels iterate columns linearly — no per-member pointer
// chasing, no per-member allocation — while Len records how many of the
// row's leading slots are live (modes are in canonical order, unavailable
// modes omitted exactly as Characterize omits them).
type LinkColumns struct {
	// N is the number of members the columns currently describe.
	N int
	// Len[k] is the number of available modes for member k; member k's
	// values live at [k*NumModes, k*NumModes+Len[k]).
	Len []int32
	// Mode and Rate identify each link slot.
	Mode []Mode
	Rate []units.BitRate
	// SNR and BER are the link-quality columns (SNR in dB at the slot's
	// operating rate).
	SNR []units.DB
	BER []float64
	// Good is the delivered payload bitrate column.
	Good []units.BitRate
	// T and R are the per-useful-bit energy columns — the (T_i, R_i) of
	// Eq. 1 — at the transmitter and receiver.
	T, R []units.JoulesPerBit
}

// Reset sizes the columns for n members, reusing the underlying arrays
// when capacity allows (one amortized allocation per growth, zero in
// steady state).
func (c *LinkColumns) Reset(n int) {
	c.N = n
	flat := n * NumModes
	if cap(c.Len) < n {
		c.Len = make([]int32, n)
		c.Mode = make([]Mode, flat)
		c.Rate = make([]units.BitRate, flat)
		c.SNR = make([]units.DB, flat)
		c.BER = make([]float64, flat)
		c.Good = make([]units.BitRate, flat)
		c.T = make([]units.JoulesPerBit, flat)
		c.R = make([]units.JoulesPerBit, flat)
	}
	c.Len = c.Len[:n]
	c.Mode = c.Mode[:flat]
	c.Rate = c.Rate[:flat]
	c.SNR = c.SNR[:flat]
	c.BER = c.BER[:flat]
	c.Good = c.Good[:flat]
	c.T = c.T[:flat]
	c.R = c.R[:flat]
}

// Row copies member k's live slots into dst (len ≥ NumModes) as
// ModeLinks and returns the filled prefix — the bridge back from
// columnar storage to the slice-shaped APIs.
func (c *LinkColumns) Row(k int, dst []ModeLink) []ModeLink {
	base := k * NumModes
	n := int(c.Len[k])
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = ModeLink{
			Mode: c.Mode[base+i],
			Rate: c.Rate[base+i],
			BER:  c.BER[base+i],
			Good: c.Good[base+i],
			T:    c.T[base+i],
			R:    c.R[base+i],
		}
	}
	return dst
}

// CharacterizeColumns fills member k's row of cols from this model at
// distance d: the same per-mode computations as Characterize, plus the
// SNR column, written straight into the flat arrays. Each call touches
// only row k, so a batch characterization can stripe calls across a
// worker pool with index-owned writes.
func (m *Model) CharacterizeColumns(cols *LinkColumns, k int, d units.Meter) {
	base := k * NumModes
	n := 0
	for _, mode := range Modes {
		r, ok := m.BestRate(mode, d)
		if !ok {
			continue
		}
		ber := m.BER(mode, r, d)
		t, rx := m.costs(mode, r, ber)
		i := base + n
		cols.Mode[i] = mode
		cols.Rate[i] = r
		cols.SNR[i] = m.SNR(mode, r, d)
		cols.BER[i] = ber
		cols.Good[i] = m.goodput(mode, r, ber)
		cols.T[i] = t
		cols.R[i] = rx
		n++
	}
	cols.Len[k] = int32(n)
}

// SharedCarrierLink characterizes the backscatter mode when the carrier
// comes from a *different* hub's active transmitter: the donor's carrier
// travels dForward to the tag, is modulated, and the sidebands travel
// dReverse to the data receiver — the bistatic budget of
// rf.BackscatterLink.Received instead of the monostatic 40·log10(d)
// round trip. The receiving hub no longer generates the carrier, only
// envelope-detects, so its per-bit cost drops from the 129 mW
// backscatter reader to the passive envelope chain at the link's rate —
// the carrier bill moves off this braid entirely, which is the whole
// point of sharing. The model's FadeMargin and Interference apply as in
// SNR. Returns ok=false when no rate meets RangeBERTarget over the
// bistatic path.
func (m *Model) SharedCarrierLink(dForward, dReverse units.Meter) (ModeLink, bool) {
	for _, r := range Rates {
		rx := m.RoundTrip.Received(CarrierPower, dForward, dReverse).Sub(m.FadeMargin)
		noise := BackscatterSensitivity(r).Sub(snrTargetDB(ModeBackscatter, r))
		ber := modem.BERFromDB(SchemeAt(ModeBackscatter, r), rf.SINR(rx, noise, m.Interference))
		if ber > RangeBERTarget {
			continue
		}
		good := m.goodput(ModeBackscatter, r, ber)
		if good <= 0 {
			continue
		}
		return ModeLink{
			Mode: ModeBackscatter,
			Rate: r,
			BER:  ber,
			Good: good,
			T:    units.PerBit(BackscatterTXPower(r), good),
			R:    units.PerBit(PassiveRXPower(r), good),
		}, true
	}
	return ModeLink{}, false
}

// LinkAt characterizes one specific mode/rate at a distance regardless of
// whether it meets the range target (used for BER sweeps).
func (m *Model) LinkAt(mode Mode, r units.BitRate, d units.Meter) ModeLink {
	ber := m.BER(mode, r, d)
	t, rx := m.costs(mode, r, ber)
	return ModeLink{Mode: mode, Rate: r, BER: ber, Good: m.goodput(mode, r, ber), T: t, R: rx}
}

// CommercialReaderBER returns the AS3993 baseline's BER at 100 kbps and
// distance d, for the Fig. 12 comparison. The reader uses its own budget:
// 17 dBm carrier, +2 dBi reader antennas, no SAW/switch penalty.
func CommercialReaderBER(d units.Meter) float64 {
	link := rf.BackscatterLink{
		Forward:        rf.Link{Frequency: rf.DefaultFrequency, TXAntenna: rf.ReaderAntenna, RXAntenna: rf.ChipAntenna},
		Reverse:        rf.Link{Frequency: rf.DefaultFrequency, TXAntenna: rf.ChipAntenna, RXAntenna: rf.ReaderAntenna},
		ReflectionLoss: BackscatterReflectionLoss,
	}
	rx := link.ReceivedMonostatic(ReaderCarrierPower, d)
	noise := ReaderSensitivity.Sub(units.DBFromRatio(modem.SNRForBER(modem.OOKNonCoherent, RangeBERTarget)))
	return modem.BERFromDB(modem.OOKNonCoherent, rf.SNR(rx, noise))
}
