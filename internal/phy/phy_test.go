package phy

import (
	"math"
	"testing"

	"braidio/internal/analog"
	"braidio/internal/modem"
	"braidio/internal/units"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestPowerRatiosMatchFig9 pins the calibrated power ratios to the
// paper's published values: 0.9524:1 (active), 1:2546/1:4000/1:5600
// (passive), 3546:1/5571:1/7800:1 (backscatter).
func TestPowerRatiosMatchFig9(t *testing.T) {
	if r := float64(ActiveRXPower / ActiveTXPower); !approx(r, 0.9524, 0.001) {
		t.Errorf("active RX/TX = %v, want 0.9524", r)
	}
	cases := []struct {
		rate units.BitRate
		pas  float64
		bs   float64
	}{
		{units.Rate1M, 2546, 3546},
		{units.Rate100k, 4000, 5571},
		{units.Rate10k, 10e3 * 0.56, 7800}, // 5600
	}
	for _, c := range cases {
		if r := float64(PassiveTXPower / PassiveRXPower(c.rate)); !approx(r, c.pas, 1) {
			t.Errorf("passive ratio at %v = %v, want %v", c.rate, r, c.pas)
		}
		if r := float64(BackscatterRXPower / BackscatterTXPower(c.rate)); !approx(r, c.bs, 1) {
			t.Errorf("backscatter ratio at %v = %v, want %v", c.rate, r, c.bs)
		}
	}
}

// TestAbstractPowerEnvelope pins the "16 µW – 129 mW" envelope from the
// abstract: the cheapest draw is the 10 kbps backscatter tag, the most
// expensive the backscatter receiver.
func TestAbstractPowerEnvelope(t *testing.T) {
	min := BackscatterTXPower(units.Rate10k)
	if !approx(min.Microwatts(), 16.5, 0.2) {
		t.Errorf("floor = %v µW, want ≈16.5", min.Microwatts())
	}
	if BackscatterRXPower.Milliwatts() != 129 {
		t.Errorf("ceiling = %v mW, want 129", BackscatterRXPower.Milliwatts())
	}
}

// TestBackscatterRangesMatchFig13 verifies the calibrated model yields
// the paper's backscatter ranges: ≈0.9 m at 1 Mbps, ≈1.8 m at 100 kbps,
// ≈2.4 m at 10 kbps.
func TestBackscatterRangesMatchFig13(t *testing.T) {
	m := NewModel()
	cases := []struct {
		rate units.BitRate
		want float64
	}{{units.Rate1M, 0.9}, {units.Rate100k, 1.8}, {units.Rate10k, 2.4}}
	for _, c := range cases {
		got := float64(m.Range(ModeBackscatter, c.rate))
		if !approx(got, c.want, 0.05*c.want) {
			t.Errorf("backscatter range at %v = %v m, want %v", c.rate, got, c.want)
		}
	}
}

// TestPassiveRangesMatchFig13 verifies the passive receiver ranges:
// ≈3.9 / 4.2 / 5.1 m.
func TestPassiveRangesMatchFig13(t *testing.T) {
	m := NewModel()
	cases := []struct {
		rate units.BitRate
		want float64
	}{{units.Rate1M, 3.9}, {units.Rate100k, 4.2}, {units.Rate10k, 5.1}}
	for _, c := range cases {
		got := float64(m.Range(ModePassive, c.rate))
		if !approx(got, c.want, 0.05*c.want) {
			t.Errorf("passive range at %v = %v m, want %v", c.rate, got, c.want)
		}
	}
}

// TestActiveWellBeyondSixMeters: the paper's only claim about the active
// link's reach.
func TestActiveWellBeyondSixMeters(t *testing.T) {
	m := NewModel()
	if r := m.Range(ModeActive, units.Rate1M); r < 10 {
		t.Errorf("active range = %v m, want well beyond 6", r)
	}
	if m.BER(ModeActive, units.Rate1M, 6) > 1e-6 {
		t.Errorf("active BER at 6 m = %v, want essentially zero", m.BER(ModeActive, units.Rate1M, 6))
	}
}

// TestBackscatterSensitivityAgreesWithAnalogChain cross-validates the
// calibrated sensitivity table against the first-principles receive
// chain of internal/analog (within 5 dB, per DESIGN.md).
func TestBackscatterSensitivityAgreesWithAnalogChain(t *testing.T) {
	chain := analog.DefaultChain()
	for _, r := range Rates {
		calibrated := float64(BackscatterSensitivity(r))
		derived := float64(chain.Sensitivity(r))
		if math.Abs(calibrated-derived) > 5 {
			t.Errorf("rate %v: calibrated %v dBm vs chain %v dBm (>5 dB apart)", r, calibrated, derived)
		}
	}
}

func TestBERMonotoneInDistance(t *testing.T) {
	m := NewModel()
	for _, mode := range Modes {
		prev := -1.0
		for d := 0.2; d < 8; d += 0.2 {
			ber := m.BER(mode, units.Rate100k, units.Meter(d))
			if ber < prev-1e-15 {
				t.Fatalf("%v: BER decreased with distance at %v m", mode, d)
			}
			prev = ber
		}
	}
}

// TestBERAtRangeEqualsTarget: by construction, BER at the published range
// equals the 1% target.
func TestBERAtRangeEqualsTarget(t *testing.T) {
	m := NewModel()
	for _, c := range []struct {
		mode Mode
		rate units.BitRate
	}{{ModeBackscatter, units.Rate1M}, {ModeBackscatter, units.Rate10k}, {ModePassive, units.Rate100k}} {
		r := m.Range(c.mode, c.rate)
		if ber := m.BER(c.mode, c.rate, r); !approx(math.Log10(ber), -2, 0.05) {
			t.Errorf("%v@%v: BER at range = %v, want 0.01", c.mode, c.rate, ber)
		}
	}
}

// TestBestRateSteps verifies the rate ladder of Fig. 13/14: backscatter
// steps 1M → 100k at 0.9 m and 100k → 10k at 1.8 m.
func TestBestRateSteps(t *testing.T) {
	m := NewModel()
	cases := []struct {
		d    float64
		want units.BitRate
	}{
		{0.3, units.Rate1M}, {0.85, units.Rate1M},
		{1.0, units.Rate100k}, {1.7, units.Rate100k},
		{2.0, units.Rate10k}, {2.35, units.Rate10k},
	}
	for _, c := range cases {
		got, ok := m.BestRate(ModeBackscatter, units.Meter(c.d))
		if !ok {
			t.Errorf("backscatter unavailable at %v m", c.d)
			continue
		}
		if got != c.want {
			t.Errorf("best backscatter rate at %v m = %v, want %v", c.d, got, c.want)
		}
	}
	if _, ok := m.BestRate(ModeBackscatter, 2.6); ok {
		t.Error("backscatter should be unavailable beyond 2.4 m")
	}
}

// TestRegimes pins the regime boundaries of Fig. 8 / §6.2: backscatter
// dies at ~2.4 m, passive at ~5.1 m.
func TestRegimes(t *testing.T) {
	m := NewModel()
	cases := []struct {
		d    float64
		want Regime
	}{
		{0.3, RegimeA}, {2.3, RegimeA},
		{2.6, RegimeB}, {4.5, RegimeB}, {5.0, RegimeB},
		{5.3, RegimeC}, {20, RegimeC},
	}
	for _, c := range cases {
		if got := m.Regime(units.Meter(c.d)); got != c.want {
			t.Errorf("regime at %v m = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestCharacterize(t *testing.T) {
	m := NewModel()
	// At 0.3 m all three links run at 1 Mbps (§6.2: "At 0.3m, all the
	// links are available at the highest bitrate").
	links := m.Characterize(0.3)
	if len(links) != 3 {
		t.Fatalf("links at 0.3 m = %d, want 3", len(links))
	}
	for _, l := range links {
		if l.Rate != units.Rate1M {
			t.Errorf("%v at 0.3 m runs %v, want 1 Mbps", l.Mode, l.Rate)
		}
		if l.T <= 0 || l.R <= 0 {
			t.Errorf("%v: non-positive costs %v/%v", l.Mode, l.T, l.R)
		}
	}
	// Backscatter favors the transmitter; passive favors the receiver.
	var pas, bs ModeLink
	for _, l := range links {
		switch l.Mode {
		case ModePassive:
			pas = l
		case ModeBackscatter:
			bs = l
		}
	}
	if !(bs.T < bs.R && pas.R < pas.T) {
		t.Errorf("cost asymmetries wrong: bs %v/%v, pas %v/%v", bs.T, bs.R, pas.T, pas.R)
	}
	// At 3 m only active+passive remain.
	if got := len(m.Characterize(3)); got != 2 {
		t.Errorf("links at 3 m = %d, want 2", got)
	}
	// At 10 m only active.
	if got := len(m.Characterize(10)); got != 1 {
		t.Errorf("links at 10 m = %d, want 1", got)
	}
}

// TestEfficiencyRatiosAtShortRange reproduces the headline Fig. 9 claim:
// at 0.3 m the TX:RX efficiency ratios span 1:2546 to 3546:1.
func TestEfficiencyRatiosAtShortRange(t *testing.T) {
	m := NewModel()
	for _, l := range m.Characterize(0.3) {
		ratio := float64(l.R / l.T) // efficiency ratio = inverse cost ratio
		switch l.Mode {
		case ModeActive:
			if !approx(ratio, 0.9524, 0.01) {
				t.Errorf("active efficiency ratio %v, want 0.9524", ratio)
			}
		case ModePassive:
			if !approx(ratio, 1.0/2546, 0.0001) {
				t.Errorf("passive efficiency ratio %v, want 1/2546", ratio)
			}
		case ModeBackscatter:
			if !approx(ratio, 3546, 40) {
				t.Errorf("backscatter efficiency ratio %v, want 3546", ratio)
			}
		}
	}
}

// TestCommercialReaderFig12 verifies the baseline: the AS3993 reaches
// ≈3 m at 100 kbps (vs Braidio's 1.8 m) while drawing 640 mW (vs 129 mW
// — about 5× the power).
func TestCommercialReaderFig12(t *testing.T) {
	if CommercialReaderBER(2.9) > RangeBERTarget {
		t.Error("commercial reader below 3 m should meet the BER target")
	}
	if CommercialReaderBER(3.2) < RangeBERTarget {
		t.Error("commercial reader beyond 3 m should fail the BER target")
	}
	ratio := float64(ReaderPowerDraw / BackscatterRXPower)
	if !approx(ratio, 5, 0.1) {
		t.Errorf("reader/Braidio power ratio = %v, want ≈5", ratio)
	}
	m := NewModel()
	braidioRange := float64(m.Range(ModeBackscatter, units.Rate100k))
	if reduction := 1 - braidioRange/3.0; !approx(reduction, 0.4, 0.05) {
		t.Errorf("Braidio range reduction vs reader = %v, want ≈40%%", reduction)
	}
}

func TestSwitchOverheadTable5(t *testing.T) {
	// Pin the Table 5 values (in joules).
	if got := SwitchOverhead[ModeBackscatter].TX; !approx(float64(got), 3.0888e-4, 1e-8) {
		t.Errorf("backscatter TX switch = %v J, want 3.0888e-4 (8.58e-8 Wh)", got)
	}
	if got := SwitchOverhead[ModePassive].RX; !approx(float64(got), 1.584e-8, 1e-12) {
		t.Errorf("passive RX switch = %v J, want 1.584e-8 (4.4e-12 Wh)", got)
	}
	// Switching costs are negligible vs a second of operation in the
	// relevant mode — the paper's conclusion.
	for mode, oh := range SwitchOverhead {
		opEnergy := float64(units.Energy(TXPower(mode, units.Rate10k), 1))
		if float64(oh.TX) > opEnergy {
			// The backscatter TX switch is the documented worst case:
			// compare against the receiver side instead.
			opEnergy = float64(units.Energy(RXPower(mode, units.Rate10k), 1))
			if float64(oh.TX) > opEnergy {
				t.Errorf("%v: switch energy %v not negligible", mode, oh.TX)
			}
		}
	}
}

func TestFadeMarginShrinksRange(t *testing.T) {
	m := NewModel()
	base := m.Range(ModeBackscatter, units.Rate100k)
	m.FadeMargin = 6
	derated := m.Range(ModeBackscatter, units.Rate100k)
	if derated >= base {
		t.Errorf("fade margin did not shrink range: %v vs %v", derated, base)
	}
	// 6 dB on a 40 log10 slope: range shrinks by 10^(6/40) ≈ 1.41.
	if r := float64(base / derated); !approx(r, 1.41, 0.05) {
		t.Errorf("range shrink factor = %v, want ≈1.41", r)
	}
}

func TestLinkAtOutOfRange(t *testing.T) {
	m := NewModel()
	l := m.LinkAt(ModeBackscatter, units.Rate1M, 5)
	if l.BER < 0.4 {
		t.Errorf("way-out-of-range BER = %v, want ≈0.5", l.BER)
	}
	if !math.IsInf(float64(l.T), 1) {
		t.Errorf("dead link TX cost = %v, want +Inf", l.T)
	}
}

func TestGoodputOnModeLink(t *testing.T) {
	m := NewModel()
	l := m.LinkAt(ModeBackscatter, units.Rate1M, 0.3)
	if float64(l.Good) < 0.9e6 || float64(l.Good) > 1e6 {
		t.Errorf("goodput at 0.3 m = %v, want ≈937 kbps", l.Good)
	}
	// The passive link pays its duty overhead on top of framing.
	pas := m.LinkAt(ModePassive, units.Rate1M, 0.3)
	want := 1e6 * 0.9375 * PassiveLinkEfficiency
	if math.Abs(float64(pas.Good)-want) > 1 {
		t.Errorf("passive goodput = %v, want %v", pas.Good, want)
	}
	// ARQ accounting derates goodput once losses appear.
	m.Retransmit = true
	edge := m.LinkAt(ModePassive, units.Rate1M, 3.5)
	if edge.Good >= pas.Good {
		t.Error("ARQ accounting did not derate a lossy link")
	}
}

func TestStringers(t *testing.T) {
	for _, m := range Modes {
		if m.String() == "" {
			t.Error("empty mode name")
		}
	}
	for _, r := range []Regime{RegimeA, RegimeB, RegimeC, OutOfRange, Regime(9)} {
		if r.String() == "" {
			t.Error("empty regime name")
		}
	}
	if Mode(9).String() == "" {
		t.Error("empty unknown mode name")
	}
}

func TestUncalibratedRatePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"passive rx":  func() { PassiveRXPower(12345) },
		"bs tx":       func() { BackscatterTXPower(12345) },
		"bs sens":     func() { BackscatterSensitivity(12345) },
		"pas sens":    func() { PassiveSensitivity(12345) },
		"bad mode tx": func() { TXPower(Mode(9), units.Rate1M) },
		"bad mode rx": func() { RXPower(Mode(9), units.Rate1M) },
		"bad sens":    func() { Sensitivity(Mode(9), units.Rate1M) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestSchemeAt pins the modulation detail of §2.2: the tag's modulator
// is ASK at low rates and FSK at the megahertz clock; the active radio
// is coherent.
func TestSchemeAt(t *testing.T) {
	if got := SchemeAt(ModeBackscatter, units.Rate1M); got != modem.FSKNonCoherent {
		t.Errorf("backscatter@1M scheme = %v, want FSK", got)
	}
	if got := SchemeAt(ModeBackscatter, units.Rate100k); got != modem.OOKNonCoherent {
		t.Errorf("backscatter@100k scheme = %v, want OOK", got)
	}
	if got := SchemeAt(ModePassive, units.Rate1M); got != modem.OOKNonCoherent {
		t.Errorf("passive scheme = %v, want OOK", got)
	}
	if got := SchemeAt(ModeActive, units.Rate1M); got != modem.PSKCoherent {
		t.Errorf("active scheme = %v, want PSK", got)
	}
	// The range anchors hold regardless of scheme: BER at the published
	// range equals the 1%% target by construction.
	m := NewModel()
	r := m.Range(ModeBackscatter, units.Rate1M)
	if ber := m.BER(ModeBackscatter, units.Rate1M, r); !approx(math.Log10(ber), -2, 0.05) {
		t.Errorf("FSK backscatter BER at range = %v, want 0.01", ber)
	}
}
