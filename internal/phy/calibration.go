// Calibration constants for the Braidio PHY.
//
// Every absolute constant that ties the simulator to the paper's measured
// prototype lives in this file, with the published observable it was
// derived from. The derivation stance (DESIGN.md §2): power draws and
// power ratios come straight from the paper's text and Figs. 9/14;
// receiver sensitivities are back-computed from the published operating
// ranges (Figs. 12/13) through the free-space link budgets of
// internal/rf; everything downstream is derived, not fitted.
package phy

import (
	"braidio/internal/units"
)

// CarrierPower is the SI4432 carrier emitter's output: 13 dBm (125 mW
// draw at 13 dBm per Table 4).
const CarrierPower units.DBm = 13

// ReaderCarrierPower is the AS3993 baseline's output per Table 2
// (640 mW draw at 17 dBm).
const ReaderCarrierPower units.DBm = 17

// Power draw of each mode's endpoint electronics, per §6 and Fig. 9/14.
//
// The ratios of Fig. 9 at 0.3 m pin these numbers:
//
//	active      TX:RX efficiency 0.9524:1  ⇒ P_rx/P_tx = 0.9524
//	passive     1:2546 at 1 Mbps           ⇒ P_rx = P_tx/2546
//	backscatter 3546:1 at 1 Mbps           ⇒ P_tx = P_rx/3546
//
// and Fig. 14 extends the passive ratios to 1:4000 (100 kbps) and 1:5600
// (10 kbps), and backscatter to 5571:1 and 7800:1. With the backscatter
// receiver at 129 mW (total board draw quoted in §6.1), the 10 kbps tag
// works out to 16.5 µW — the "16 µW" floor in the abstract.
const (
	// ActiveTXPower and ActiveRXPower model the SPBT2632-class active
	// transceiver, which also serves as the Bluetooth-equivalent
	// endpoint in the evaluation. Their sum exceeding the
	// single-carrier modes' total is what makes line BC of Fig. 9 the
	// efficient frontier, and their 100:105 ratio is exactly the
	// 0.9524:1 annotation on point A.
	ActiveTXPower units.Watt = 105e-3
	ActiveRXPower units.Watt = 100e-3

	// PassiveTXPower is the carrier-plus-data transmitter feeding a
	// passive receiver (SI4432 at 13 dBm plus controller).
	PassiveTXPower units.Watt = 127.3e-3

	// BackscatterRXPower is the full backscatter-mode receiver: carrier
	// emitter, envelope chain, amplifier, comparator, controller — the
	// 129 mW Braidio reader of Fig. 12.
	BackscatterRXPower units.Watt = 129e-3
)

// PassiveRXPower returns the passive envelope receiver's draw at each
// bitrate (comparator and amplifier bandwidth scale with bitrate).
func PassiveRXPower(r units.BitRate) units.Watt {
	switch r {
	case units.Rate1M:
		return PassiveTXPower / 2546
	case units.Rate100k:
		return PassiveTXPower / 4000
	case units.Rate10k:
		return PassiveTXPower / 5600
	default:
		panic("phy: no calibrated passive RX power for rate " + r.String())
	}
}

// BackscatterTXPower returns the tag-side transmitter draw at each
// bitrate (the modulation clock dominates, so slower is cheaper).
func BackscatterTXPower(r units.BitRate) units.Watt {
	switch r {
	case units.Rate1M:
		return BackscatterRXPower / 3546
	case units.Rate100k:
		return BackscatterRXPower / 5571
	case units.Rate10k:
		return BackscatterRXPower / 7800
	default:
		panic("phy: no calibrated backscatter TX power for rate " + r.String())
	}
}

// Receiver sensitivities, back-computed from the published ranges through
// the free-space budgets (chip antennas at −2 dBi, 6 dB backscatter
// reflection loss, 2.35 dB SAW + switch insertion loss):
//
//	backscatter ranges 0.9 / 1.8 / 2.4 m  (Fig. 13) ⇒ −64.9 / −76.9 / −81.9 dBm
//	passive     ranges 3.9 / 4.2 / 5.1 m  (Fig. 13) ⇒ −36.8 / −37.5 / −39.2 dBm
//
// The backscatter sensitivities agree with the first-principles analog
// chain (internal/analog.DefaultChain) within a few dB — validated by a
// test. The passive-mode values carry the prototype's large
// implementation margin (shallow ASK modulation depth on the active
// transmitter plus detector inefficiency), which we take as measured.
func BackscatterSensitivity(r units.BitRate) units.DBm {
	switch r {
	case units.Rate1M:
		return -64.86
	case units.Rate100k:
		return -76.90
	case units.Rate10k:
		return -81.90
	default:
		panic("phy: no calibrated backscatter sensitivity for rate " + r.String())
	}
}

// PassiveSensitivity returns the passive receiver's effective minimum
// input power per bitrate.
func PassiveSensitivity(r units.BitRate) units.DBm {
	switch r {
	case units.Rate1M:
		return -36.84
	case units.Rate100k:
		return -37.48
	case units.Rate10k:
		return -39.17
	default:
		panic("phy: no calibrated passive sensitivity for rate " + r.String())
	}
}

// ActiveSensitivity is the active radio's sensitivity at 1 Mbps — BLE
// class, around −90 dBm; the paper only says the active link works "well
// beyond 6 meters".
const ActiveSensitivity units.DBm = -90

// ReaderSensitivity is the AS3993 baseline's effective sensitivity at
// 100 kbps, back-computed from its 3 m range at 17 dBm with its larger
// (+2 dBi) reader antennas.
const ReaderSensitivity units.DBm = -71.42

// ReaderPowerDraw is the AS3993 board's draw (Table 2 / §6.1).
const ReaderPowerDraw units.Watt = 640e-3

// RangeBERTarget is the bit error rate defining "operational range"
// throughout the evaluation ("for BER < 0.01").
const RangeBERTarget = 0.01

// Insertion losses on the Braidio receive path: SAW filter (2 dB) plus
// antenna switch (0.35 dB).
const FrontEndLoss units.DB = 2.35

// BackscatterReflectionLoss is the tag's modulation loss.
const BackscatterReflectionLoss units.DB = 6

// PassiveLinkEfficiency is the protocol-level efficiency of the passive
// receiver link on top of framing: the transmitter keeps its carrier on
// through the extended preambles the envelope detector needs to settle
// and through inter-frame gaps, burning carrier power that moves no
// bits. Calibrated so that the passive and backscatter corner gains of
// Fig. 15 reproduce the paper's 299× vs 397× asymmetry (the active and
// backscatter links pay no such duty overhead: the tag's modulator and
// the active radio idle cheaply between frames).
const PassiveLinkEfficiency = 0.75

// ProtocolEfficiency returns the mode's duty efficiency multiplier on
// top of frame-level efficiency.
func ProtocolEfficiency(m Mode) float64 {
	if m == ModePassive {
		return PassiveLinkEfficiency
	}
	return 1
}

// Switching overheads per transition, from Table 5 (converted from Wh to
// joules). The backscatter TX number is the paper's worst case — "we use
// the worse scenario, i.e. the link speed is only 10kbps" — because the
// mode-entry handshake runs at link speed; SwitchCost scales it to the
// actual rate.
var SwitchOverhead = map[Mode]struct{ TX, RX units.Joule }{
	ModeActive:      {TX: 3.78e-6, RX: 3.636e-6},
	ModePassive:     {TX: 6.192e-6, RX: 1.584e-8},
	ModeBackscatter: {TX: 3.0888e-4, RX: 3.96e-8},
}

// SwitchCost returns the per-transition energies for entering a mode at a
// given link rate. The backscatter transmitter-side overhead is dominated
// by the handshake airtime, so it scales inversely with the rate from the
// Table 5 worst case at 10 kbps; the other entries are rate-independent
// electronics settling costs.
func SwitchCost(m Mode, r units.BitRate) (tx, rx units.Joule) {
	oh := SwitchOverhead[m]
	tx, rx = oh.TX, oh.RX
	if m == ModeBackscatter && r > units.Rate10k {
		tx = units.Joule(float64(tx) * float64(units.Rate10k) / float64(r))
	}
	return tx, rx
}
