package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"braidio/internal/phy"
)

func TestCounterAndFloatCounter(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(4)
	if got := c.Load(); got != 7 {
		t.Fatalf("Counter.Load = %d, want 7", got)
	}

	var f FloatCounter
	f.scale = energyScale
	f.Add(1.5)
	f.Add(0.25)
	if got := f.Load(); got != 1.75 {
		t.Fatalf("FloatCounter.Load = %v, want 1.75", got)
	}
	// Negative and NaN observations must be dropped, not poison the sum.
	f.Add(-1)
	f.Add(nan())
	if got := f.Load(); got != 1.75 {
		t.Fatalf("FloatCounter after bad inputs = %v, want 1.75", got)
	}
}

func nan() float64 { z := 0.0; return z / z }

// TestFloatCounterCommutes proves the determinism contract's core: any
// interleaving of the same observation set yields the same raw total.
func TestFloatCounterCommutes(t *testing.T) {
	obsSet := []float64{0.1, 2.5e-7, 3.14159, 42, 1e-9, 0.333333}
	sequential := FloatCounter{scale: energyScale}
	for _, v := range obsSet {
		sequential.Add(v)
	}
	concurrent := FloatCounter{scale: energyScale}
	var wg sync.WaitGroup
	for _, v := range obsSet {
		wg.Add(1)
		go func() {
			defer wg.Done()
			concurrent.Add(v)
		}()
	}
	wg.Wait()
	if sequential.raw() != concurrent.raw() {
		t.Fatalf("fixed-point sum not commutative: %d vs %d", sequential.raw(), concurrent.raw())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.init([]float64{1, 10, 100}, 1)
	for _, v := range []float64{0.5, 1, 5, 99, 100, 1e6} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{2, 1, 2, 1} // ≤1, ≤10, ≤100, overflow
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if h.Count() != 6 || s.Count != 6 {
		t.Fatalf("Count = %d/%d, want 6", h.Count(), s.Count)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	if tr.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", tr.Cap())
	}
	for i := 0; i < 7; i++ {
		tr.Record(Event{Kind: EvModeSwitch, Round: i})
	}
	if tr.Total() != 7 {
		t.Fatalf("Total = %d, want 7", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Round != 3+i { // oldest retained is round 3
			t.Fatalf("event %d has round %d, want %d", i, ev.Round, 3+i)
		}
	}
	if NewTracer(0).Cap() != DefaultTraceCap {
		t.Fatalf("NewTracer(0) capacity = %d, want %d", NewTracer(0).Cap(), DefaultTraceCap)
	}
}

func TestEventStrings(t *testing.T) {
	kinds := []EventKind{EvModeSwitch, EvFallback, EvReplan, EvQuarantine, EvHubDeath, EvOutage, EvLinkDead}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "event(") || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	ev := Event{Kind: EvQuarantine, Round: 3, Member: 2, Time: 1.5}
	if s := ev.String(); !strings.Contains(s, "member=2") || !strings.Contains(s, "quarantine") {
		t.Fatalf("Event.String = %q", s)
	}
}

func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	r.Trace(Event{Kind: EvFallback}) // must not panic
	withTracer := NewRecorder()
	withTracer.Trace(Event{Kind: EvFallback}) // nil Tracer: no-op
}

func TestActiveAndDefault(t *testing.T) {
	defer SetDefault(nil)
	if Active(nil) != nil {
		t.Fatal("Active(nil) with no default should be nil")
	}
	d := NewRecorder()
	SetDefault(d)
	if Active(nil) != d {
		t.Fatal("Active(nil) should resolve the default")
	}
	explicit := NewRecorder()
	if Active(explicit) != explicit {
		t.Fatal("explicit recorder must win over the default")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) should clear the default")
	}
}

func TestSnapshotDerived(t *testing.T) {
	r := NewRecorder()
	r.Bits.Add(1000)
	r.ModeBits[phy.ModeActive].Add(250)
	r.ModeBits[phy.ModeBackscatter].Add(750)
	r.AirTime.Add(4)
	r.ModeTime[phy.ModeActive].Add(1)
	r.ModeTime[phy.ModeBackscatter].Add(3)
	r.DrainTX.Add(0.002)
	r.DrainRX.Add(0.006)
	s := r.Snapshot()
	if got := s.ModeBitFraction(phy.ModeActive); got != 0.25 {
		t.Fatalf("ModeBitFraction(active) = %v, want 0.25", got)
	}
	if got := s.ModeTimeFraction(phy.ModeBackscatter); got != 0.75 {
		t.Fatalf("ModeTimeFraction(backscatter) = %v, want 0.75", got)
	}
	if got := s.AvgEnergyPerBit(); got != 8e-6 {
		t.Fatalf("AvgEnergyPerBit = %v, want 8e-6", got)
	}
	if got := s.DrainRatio(); got < 0.333 || got > 0.334 {
		t.Fatalf("DrainRatio = %v, want ~1/3", got)
	}
	var empty Snapshot
	if empty.ModeBitFraction(phy.ModeActive) != 0 || empty.AvgEnergyPerBit() != 0 {
		t.Fatal("empty snapshot fractions should be 0")
	}
}

func TestCanonicalZeroesNondeterministicSections(t *testing.T) {
	r := NewRecorder()
	r.Tracer = NewTracer(8)
	r.LPSolveLatency.Observe(1234)
	r.Trace(Event{Kind: EvReplan})
	s := r.Snapshot().Canonical()
	if s.LPSolveLatency.Counts != nil || s.LPSolveLatency.Sum != 0 {
		t.Fatal("Canonical must drop latency buckets and sum")
	}
	if s.LPSolveLatency.Count != 1 {
		t.Fatalf("Canonical must keep the latency observation count, got %d", s.LPSolveLatency.Count)
	}
	if s.Cache != (CacheSnapshot{}) {
		t.Fatal("Canonical must zero the cache section")
	}
	if s.TraceTotal != 0 || s.TraceRetained != 0 {
		t.Fatal("Canonical must zero tracer stats")
	}
}

func TestWriters(t *testing.T) {
	r := NewRecorder()
	r.BraidRuns.Add(2)
	r.Bits.Add(1e6)
	r.ModeBits[phy.ModePassive].Add(1e6)
	r.EnergyPerBit.Observe(2e-7)
	s := r.Snapshot()

	var tbl bytes.Buffer
	if err := s.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "passive") || !strings.Contains(tbl.String(), "braid runs") {
		t.Fatalf("table output missing sections:\n%s", tbl.String())
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "\"BraidRuns\": 2") {
		t.Fatalf("json output missing counter:\n%s", js.String())
	}

	var prom bytes.Buffer
	if err := s.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		"braidio_braid_runs_total 2",
		`braidio_mode_bits{mode="passive"} 1e+06`,
		`braidio_energy_per_bit_joules_bucket{le="3e-07"} 1`,
		"braidio_energy_per_bit_joules_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
