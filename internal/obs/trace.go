package obs

import (
	"fmt"
	"sync"

	"braidio/internal/phy"
)

// EventKind identifies one traced engine event.
type EventKind uint8

// The traced event kinds.
const (
	// EvModeSwitch is a radio reconfiguration (the MAC's switchTo).
	EvModeSwitch EventKind = iota
	// EvFallback is an executed reversion to the active mode.
	EvFallback
	// EvReplan is a hub commit-time re-solve after snapshot shortfall.
	EvReplan
	// EvQuarantine is a hub member removed from the round-robin.
	EvQuarantine
	// EvHubDeath is the hub battery hitting empty mid-round.
	EvHubDeath
	// EvOutage is a member-round lost to an injected carrier dropout.
	EvOutage
	// EvLinkDead is a link declared dead after bounded recovery.
	EvLinkDead
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvModeSwitch:
		return "mode-switch"
	case EvFallback:
		return "fallback"
	case EvReplan:
		return "replan"
	case EvQuarantine:
		return "quarantine"
	case EvHubDeath:
		return "hub-death"
	case EvOutage:
		return "outage"
	case EvLinkDead:
		return "link-dead"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one traced engine event. Fields not meaningful for a kind
// are zero (Member is -1 for pairwise sessions).
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Mode is the mode switched to (EvModeSwitch only).
	Mode phy.Mode
	// Round is the hub scheduling round, or the MAC frame index for
	// session-level events.
	Round int
	// Member is the hub member index, -1 when not member-scoped.
	Member int
	// Time is the simulated timestamp in seconds (air time for MAC
	// events, round start for hub events).
	Time float64
}

// String renders the event for trace dumps.
func (e Event) String() string {
	switch e.Kind {
	case EvModeSwitch:
		return fmt.Sprintf("t=%.3fs r=%d %v -> %v", e.Time, e.Round, e.Kind, e.Mode)
	case EvHubDeath:
		return fmt.Sprintf("t=%.3fs r=%d %v", e.Time, e.Round, e.Kind)
	default:
		if e.Member >= 0 {
			return fmt.Sprintf("t=%.3fs r=%d member=%d %v", e.Time, e.Round, e.Member, e.Kind)
		}
		return fmt.Sprintf("t=%.3fs r=%d %v", e.Time, e.Round, e.Kind)
	}
}

// Tracer is a bounded ring buffer of engine events: recording is
// allocation-free and O(1), and once the buffer fills the oldest events
// are overwritten (Total keeps counting, so droppage is visible).
// Recording is mutex-serialized and safe for concurrent use, but the
// interleaved *order* of events is deterministic only when all writers
// are sequential (one session, one hub's commit phase) — concurrent
// fleet shards sharing a tracer interleave nondeterministically.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	n     int
	total uint64
}

// DefaultTraceCap is the ring capacity NewTracer uses for capacity <= 0.
const DefaultTraceCap = 1024

// NewTracer returns a tracer with a fixed ring of the given capacity
// (DefaultTraceCap when non-positive). The ring is allocated up front;
// Record never allocates.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (t *Tracer) Record(ev Event) {
	t.mu.Lock()
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	if t.n < len(t.buf) {
		t.n++
	}
	t.total++
	t.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(start+i)%len(t.buf)]
	}
	return out
}

// Total returns the number of events ever recorded, including any that
// have been overwritten.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int { return len(t.buf) }
