//go:build !race

package obs

import (
	"testing"

	"braidio/internal/phy"
)

// TestRecordPathAllocs gates the zero-allocation claim on every record
// primitive the engines call from their hot paths. Excluded under -race
// (the detector instruments allocations).
func TestRecordPathAllocs(t *testing.T) {
	r := NewRecorder()
	r.Tracer = NewTracer(64)
	if a := testing.AllocsPerRun(200, func() {
		r.BraidRuns.Add(1)
		r.Bits.Add(123.456)
		r.ModeBits[phy.ModeBackscatter].Add(99)
		r.EnergyPerBit.Observe(2e-7)
		r.LPSolveLatency.Observe(1500)
		r.Trace(Event{Kind: obsEvent, Mode: phy.ModePassive, Round: 7, Member: -1, Time: 0.25})
	}); a != 0 {
		t.Fatalf("record path allocates %.1f allocs/op, want 0", a)
	}
}

// obsEvent keeps the Trace call above from being specialized away.
var obsEvent = EvModeSwitch

// TestNilGuardAllocs pins the uninstrumented path: resolving and
// guarding a nil recorder must not allocate.
func TestNilGuardAllocs(t *testing.T) {
	SetDefault(nil)
	if a := testing.AllocsPerRun(200, func() {
		if rec := Active(nil); rec != nil {
			rec.BraidRuns.Add(1)
		}
	}); a != 0 {
		t.Fatalf("nil-recorder guard allocates %.1f allocs/op, want 0", a)
	}
}
