// Package obs is Braidio's zero-allocation observability layer: the
// metrics and tracing substrate the scheduling engines (internal/core,
// internal/mac, internal/hub) and the PHY link cache report into.
//
// The paper's core claim is an *energy split*: Eq. (1) chooses mode
// fractions so the two endpoints consume in proportion to their battery
// ratio. Evaluating that claim at fleet scale needs first-class
// accounting of mode occupancy (bit and time fractions per mode),
// energy per delivered bit, solver effort (LP solves vs memo reuses and
// their latency), and resilience churn (fallbacks, backoffs,
// quarantines, replans) — without perturbing the engines being
// measured. Everything here is therefore allocation-free on the record
// path and strictly observational: attaching a Recorder never changes a
// single bit of any engine's result.
//
// # Determinism contract
//
// Every record operation is commutative: counters are atomic uint64
// adds, float-valued series are accumulated in fixed-point (each
// observation is quantized deterministically on its own, then added as
// an integer), and histograms bump per-bucket integer counts. Integer
// addition commutes, so a set of observations produces bit-identical
// totals regardless of the interleaving — which is what lets the hub's
// parallel plan phase and the fleet's concurrent shards share one
// Recorder and still snapshot identically at any worker count.
//
// Two metric families are excluded from that contract and zeroed by
// Snapshot.Canonical: wall-clock latency histograms (the bucket an
// observation lands in depends on machine speed) and the process-global
// link-cache counters (concurrent planners racing on a cold cache can
// turn one miss into two). Golden tests pin Canonical snapshots.
//
// The Tracer's event *order* is deterministic only when recorded from a
// sequential context (one MAC session, one hub's commit phase); fleet
// shards sharing a tracer interleave their events nondeterministically.
//
// # No-op default
//
// A nil *Recorder is the default everywhere and costs one pointer
// comparison per record site; uninstrumented runs are bit- and
// allocation-identical to builds without this package (gated by
// AllocsPerRun tests). Create recorders with NewRecorder.
package obs

import (
	"sync/atomic"

	"braidio/internal/phy"
)

// NumModes is the number of PHY operating modes the per-mode series
// track (indexed by phy.Mode in canonical order).
const NumModes = len(phy.Modes)

// Counter is a monotonically increasing event counter: an atomic
// uint64 padded to a cache line so neighbouring counters updated by
// concurrent planners never share a line (the same discipline as the
// link cache's shard counters).
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// FloatCounter accumulates a float-valued series in fixed point: each
// observation is quantized on its own (round-to-nearest at the
// counter's resolution) and added as an integer, so the total is
// bit-identical under any concurrent interleaving — unlike a float sum,
// whose value depends on addition order. The quantization error is
// bounded by half a unit per Add call.
type FloatCounter struct {
	v atomic.Uint64
	// scale is the fixed-point resolution in units per 1.0; set once at
	// construction, read-only afterwards.
	scale float64
	_     [48]byte
}

// Add accumulates one non-negative observation. Negative and NaN values
// are dropped (engine totals are non-negative by construction; a NaN
// must not poison the accumulator).
func (c *FloatCounter) Add(x float64) {
	if !(x > 0) {
		return
	}
	c.v.Add(uint64(x*c.scale + 0.5))
}

// Load returns the accumulated total, dequantized.
func (c *FloatCounter) Load() float64 {
	if c.scale == 0 {
		return 0
	}
	return float64(c.v.Load()) / c.scale
}

// raw returns the fixed-point accumulator verbatim — the value golden
// tests pin, since it is exactly reproducible.
func (c *FloatCounter) raw() uint64 { return c.v.Load() }

// Fixed-point resolutions for the float series. Chosen so quantization
// is far below measurement interest while uint64 headroom covers
// fleet-scale totals (2^64 at these scales: ~7e16 bits, ~1.8e10 J,
// ~1.8e13 s).
const (
	// bitScale counts bits in 1/256-bit units.
	bitScale = 256
	// energyScale counts energy in nanojoules.
	energyScale = 1e9
	// timeScale counts time in microseconds.
	timeScale = 1e6
)

// Histogram is a fixed-bucket histogram: static upper bounds, one
// atomic count per bucket plus an overflow bucket, and a fixed-point
// sum. Observing is allocation-free and commutative (each observation
// lands in the same bucket regardless of interleaving), so bucket
// counts are deterministic at any worker count whenever the observed
// values themselves are.
type Histogram struct {
	// bounds are the inclusive upper bounds, ascending; values above
	// the last bound land in the overflow bucket counts[len(bounds)].
	bounds []float64
	counts []atomic.Uint64
	count  Counter
	sum    FloatCounter
}

// init prepares a histogram in place over static bounds with the given
// fixed-point sum resolution (in-place because the atomic fields must
// not be copied once shared).
func (h *Histogram) init(bounds []float64, sumScale float64) {
	h.bounds = bounds
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	h.sum.scale = sumScale
}

// Observe records one value. Observing into a histogram that was never
// initialized (a zero Recorder built without NewRecorder) is a no-op —
// counters on such recorders work, so the histograms must not panic.
func (h *Histogram) Observe(v float64) {
	if len(h.counts) == 0 {
		return
	}
	// Binary search for the first bound >= v; the slice is short
	// (tens of buckets), so this stays a handful of compares.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// energyPerBitBounds buckets joules per delivered bit, log-spaced 1–3
// per decade from 0.1 nJ/bit to 10 mJ/bit — backscatter sits near the
// bottom decades, the active radio near 1 µJ/bit, and starved links
// above that.
var energyPerBitBounds = []float64{
	1e-10, 3e-10, 1e-9, 3e-9, 1e-8, 3e-8, 1e-7, 3e-7,
	1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
}

// lpLatencyBounds buckets offload-solver wall-clock latency in
// nanoseconds, from sub-microsecond closed-form solves to pathological
// millisecond stalls.
var lpLatencyBounds = []float64{
	250, 500, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 1e7, 1e8,
}

// applyLatencyBounds buckets serve epoch apply-phase wall-clock latency
// in nanoseconds. Applies span drained-queue sizes from a handful of
// drift updates to million-member registration waves, so the range
// extends to seconds.
var applyLatencyBounds = []float64{
	1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 1e7, 1e8, 1e9,
}

// Recorder is the full metric set the engines report into. All fields
// are safe for concurrent use; record through them only when the
// Recorder pointer is non-nil (every instrumented site guards on that,
// which is what keeps the uninstrumented path free). Create with
// NewRecorder.
type Recorder struct {
	// Braid engine series (internal/core) — one record per completed
	// braid run. In hub runs these count engine executions, which
	// include the snapshot plans that commit-time replans discard (see
	// Replans); hub-level counters below count committed work only.

	// BraidRuns counts completed braid engine executions.
	BraidRuns Counter
	// Epochs counts allocation epochs across all braid runs.
	Epochs Counter
	// LPSolves counts epochs whose allocation came from an actual
	// optimizer solve.
	LPSolves Counter
	// LPWarmStarts counts simplex solves that succeeded starting from a
	// caller-supplied basis (the previous round's) without a phase-1 pass.
	LPWarmStarts Counter
	// LPColdFallbacks counts warm-start attempts that fell back to a
	// cold two-phase solve (stale, infeasible, or degenerate basis).
	LPColdFallbacks Counter
	// BatchRounds counts planning rounds solved through the batched
	// columnar path (one per hub round or serve epoch, not per member).
	BatchRounds Counter
	// AllocReuses counts epochs served from the ratio-keyed memo.
	AllocReuses Counter
	// Switches counts mode transitions (braid schedule transitions and
	// MAC radio reconfigurations alike).
	Switches Counter
	// Bits accumulates delivered payload bits (1/256-bit resolution).
	Bits FloatCounter
	// AirTime accumulates on-air seconds (µs resolution).
	AirTime FloatCounter
	// DrainTX and DrainRX accumulate the energy drawn at the data
	// transmitter and receiver (nJ resolution).
	DrainTX, DrainRX FloatCounter
	// SwitchEnergy accumulates mode-switch overhead energy at both ends
	// (nJ resolution).
	SwitchEnergy FloatCounter
	// ModeBits and ModeTime attribute delivered bits and air time to
	// modes, indexed by phy.Mode.
	ModeBits, ModeTime [NumModes]FloatCounter
	// EnergyPerBit distributes per-run delivered-energy efficiency,
	// (Drain1+Drain2)/Bits in J/bit, over log buckets.
	EnergyPerBit Histogram
	// LPSolveLatency distributes offload-solve wall-clock latency in
	// nanoseconds. Wall-clock, so excluded from Canonical snapshots.
	LPSolveLatency Histogram

	// MAC session series (internal/mac) — frame-level protocol events.

	// FramesDelivered and FramesLost count data frames.
	FramesDelivered, FramesLost Counter
	// Retransmissions counts extra transmission attempts.
	Retransmissions Counter
	// Probes counts probe frames.
	Probes Counter
	// Recomputes counts allocation recomputations.
	Recomputes Counter
	// Fallbacks counts executed reversions to the active mode;
	// FallbacksSuppressed counts triggers absorbed by the cooldown.
	Fallbacks, FallbacksSuppressed Counter
	// BackoffWaits counts recompute boundaries spent waiting out a
	// re-entry backoff.
	BackoffWaits Counter
	// LinkDeaths counts links declared dead after bounded recovery.
	LinkDeaths Counter

	// Hub engine series (internal/hub) — committed round accounting.

	// HubRounds counts hub scheduling rounds started.
	HubRounds Counter
	// MemberRounds counts successfully committed member-rounds.
	MemberRounds Counter
	// Replans counts commit-time re-solves after snapshot shortfall.
	Replans Counter
	// Quarantines counts members removed from the round-robin.
	Quarantines Counter
	// OutageRounds counts member-rounds lost to injected outages.
	OutageRounds Counter
	// HubDeaths counts hub batteries that died mid-run.
	HubDeaths Counter

	// Network engine series (internal/net) — multi-hub scheduling with
	// carrier sharing, interference, and 2-hop relays.

	// NetRounds counts network scheduling rounds planned.
	NetRounds Counter
	// RelayRounds counts member-rounds committed through a 2-hop relay
	// (member → neighbor hub → home hub).
	RelayRounds Counter
	// CarrierShares counts member-rounds committed with a borrowed
	// carrier: a neighboring hub's active TX served as the carrier for
	// this braid's backscatter link.
	CarrierShares Counter
	// InterferedRounds counts member-rounds planned with nonzero
	// co-channel interference at the receiving hub.
	InterferedRounds Counter
	// RelayBits accumulates payload bits delivered over 2-hop relays
	// (1/256-bit resolution).
	RelayBits FloatCounter

	// Serve daemon series (internal/serve) — online epoch accounting.

	// ServeRegisters counts admitted member registrations.
	ServeRegisters Counter
	// ServeUpdates counts admitted member/hub state updates.
	ServeUpdates Counter
	// ServeSheds counts requests dropped by admission backpressure (the
	// bounded queue was full or the member cap was hit).
	ServeSheds Counter
	// ServeEpochs counts serving epochs executed.
	ServeEpochs Counter
	// ServePlans counts member plans solved — only dirty members, so
	// ServePlans stays proportional to input drift, not membership.
	ServePlans Counter
	// ServeClean counts member-epochs skipped because the member's
	// inputs stayed within tolerance of its last plan.
	ServeClean Counter
	// ServeSnapshots counts full-state snapshot records written to the
	// journal (each heads a new segment).
	ServeSnapshots Counter
	// ServeRotations counts journal segment rotations (snapshot-triggered
	// seal-and-start-next, including the compaction that follows).
	ServeRotations Counter
	// ServeRecoveries counts daemon startups that restored state from an
	// existing journal directory (snapshot + tail replay).
	ServeRecoveries Counter
	// ServeTornRecords counts partial or corrupt trailing journal records
	// truncated by crash recovery.
	ServeTornRecords Counter
	// ServeJournalErrors counts journal write/sync failures plus every
	// record dropped while the journal was broken.
	ServeJournalErrors Counter
	// ServeApplyLatency distributes serve epoch apply-phase wall-clock
	// latency (queue drain through per-shard op apply) in nanoseconds.
	// Wall-clock, so excluded from Canonical snapshots.
	ServeApplyLatency Histogram

	// Tracer, when non-nil, receives mode-switch/fallback/replan/
	// quarantine/hub-death events from sequential engine contexts. Nil
	// disables tracing.
	Tracer *Tracer
}

// NewRecorder returns a ready Recorder with the standard bucket layouts
// and fixed-point resolutions.
func NewRecorder() *Recorder {
	r := &Recorder{}
	r.Bits.scale = bitScale
	r.AirTime.scale = timeScale
	r.DrainTX.scale = energyScale
	r.DrainRX.scale = energyScale
	r.SwitchEnergy.scale = energyScale
	r.RelayBits.scale = bitScale
	r.EnergyPerBit.init(energyPerBitBounds, 1e12)
	r.LPSolveLatency.init(lpLatencyBounds, 1)
	r.ServeApplyLatency.init(applyLatencyBounds, 1)
	for i := range r.ModeBits {
		r.ModeBits[i].scale = bitScale
		r.ModeTime[i].scale = timeScale
	}
	return r
}

// Trace records one event on the attached tracer; a nil Recorder or nil
// Tracer makes it a no-op.
func (r *Recorder) Trace(ev Event) {
	if r == nil || r.Tracer == nil {
		return
	}
	r.Tracer.Record(ev)
}

// defaultRecorder is the process-global recorder engines fall back to
// when no explicit Recorder is wired (nil means observability is off —
// the default).
var defaultRecorder atomic.Pointer[Recorder]

// SetDefault installs (or, with nil, removes) the process-global
// default Recorder. Engines resolve their explicit recorder first and
// fall back to this one, which is how the CLIs instrument runs that
// flow through internal layers without threading a pointer everywhere.
func SetDefault(r *Recorder) { defaultRecorder.Store(r) }

// Default returns the process-global default Recorder, or nil.
func Default() *Recorder { return defaultRecorder.Load() }

// Active resolves the recorder an engine should report to: the explicit
// one when non-nil, else the process default (which may itself be nil).
func Active(explicit *Recorder) *Recorder {
	if explicit != nil {
		return explicit
	}
	return defaultRecorder.Load()
}
