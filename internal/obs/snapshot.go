package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"braidio/internal/ascii"
	"braidio/internal/linkcache"
	"braidio/internal/phy"
)

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; Counts is one longer, the
	// final entry being the overflow bucket.
	Bounds []float64 `json:"bounds"`
	// Counts are per-bucket observation counts aligned with Bounds,
	// plus the overflow bucket.
	Counts []uint64 `json:"counts"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the fixed-point sum of observed values, dequantized.
	Sum float64 `json:"sum"`
}

// snapshot freezes a histogram.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// CacheSnapshot is the process-global PHY link cache's counters at
// snapshot time. Hit/miss splits depend on concurrent planner timing
// (two planners can both miss a cold key), so this section is zeroed by
// Canonical.
type CacheSnapshot struct {
	// Hits and Misses count lookups served from / added to the memo.
	Hits, Misses uint64
	// Evictions counts resident entries dropped by full shards.
	Evictions uint64
	// Entries is the current resident entry count.
	Entries int
	// Shards is the number of lock stripes.
	Shards int
}

// Snapshot is a Recorder's frozen state: every counter, the dequantized
// float series, both histograms, and the link cache's process counters.
// Snapshots are plain data — compare them, serialize them, diff them.
type Snapshot struct {
	// BraidRuns..HubDeaths mirror the Recorder counters; see Recorder
	// for per-field semantics.
	BraidRuns, Epochs, LPSolves, AllocReuses, Switches                            uint64
	LPWarmStarts, LPColdFallbacks, BatchRounds                                    uint64
	FramesDelivered, FramesLost, Retransmissions, Probes, Recomputes              uint64
	Fallbacks, FallbacksSuppressed, BackoffWaits, LinkDeaths                      uint64
	HubRounds, MemberRounds, Replans, Quarantines, OutageRounds, HubDeaths        uint64
	NetRounds, RelayRounds, CarrierShares, InterferedRounds                       uint64
	ServeRegisters, ServeUpdates, ServeSheds, ServeEpochs, ServePlans, ServeClean uint64
	ServeSnapshots, ServeRotations, ServeRecoveries, ServeTornRecords             uint64
	ServeJournalErrors                                                            uint64

	// Bits, AirTime, DrainTX, DrainRX, SwitchEnergy are the dequantized
	// float totals; RelayBits is the 2-hop-relayed subset of Bits.
	Bits, AirTime, DrainTX, DrainRX, SwitchEnergy, RelayBits float64
	// RawBits is the fixed-point Bits accumulator verbatim — exactly
	// reproducible, so golden tests pin this rather than the float.
	RawBits uint64
	// ModeBits and ModeTime attribute bits and air time to modes,
	// indexed by phy.Mode.
	ModeBits, ModeTime [NumModes]float64

	// EnergyPerBit, LPSolveLatency, and ServeApplyLatency are the frozen
	// histograms.
	EnergyPerBit, LPSolveLatency, ServeApplyLatency HistogramSnapshot
	// Cache is the process-global link-cache state.
	Cache CacheSnapshot
	// TraceTotal and TraceRetained describe the attached tracer (zero
	// when none).
	TraceTotal    uint64
	TraceRetained int
}

// Snapshot freezes the recorder's current state, including the
// process-global link-cache counters. Safe to call while engines are
// still recording (each field is read atomically; cross-field skew is
// possible mid-run, impossible once runs have completed).
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		BraidRuns:           r.BraidRuns.Load(),
		Epochs:              r.Epochs.Load(),
		LPSolves:            r.LPSolves.Load(),
		LPWarmStarts:        r.LPWarmStarts.Load(),
		LPColdFallbacks:     r.LPColdFallbacks.Load(),
		BatchRounds:         r.BatchRounds.Load(),
		AllocReuses:         r.AllocReuses.Load(),
		Switches:            r.Switches.Load(),
		FramesDelivered:     r.FramesDelivered.Load(),
		FramesLost:          r.FramesLost.Load(),
		Retransmissions:     r.Retransmissions.Load(),
		Probes:              r.Probes.Load(),
		Recomputes:          r.Recomputes.Load(),
		Fallbacks:           r.Fallbacks.Load(),
		FallbacksSuppressed: r.FallbacksSuppressed.Load(),
		BackoffWaits:        r.BackoffWaits.Load(),
		LinkDeaths:          r.LinkDeaths.Load(),
		HubRounds:           r.HubRounds.Load(),
		MemberRounds:        r.MemberRounds.Load(),
		Replans:             r.Replans.Load(),
		Quarantines:         r.Quarantines.Load(),
		OutageRounds:        r.OutageRounds.Load(),
		HubDeaths:           r.HubDeaths.Load(),
		NetRounds:           r.NetRounds.Load(),
		RelayRounds:         r.RelayRounds.Load(),
		CarrierShares:       r.CarrierShares.Load(),
		InterferedRounds:    r.InterferedRounds.Load(),
		RelayBits:           r.RelayBits.Load(),
		ServeRegisters:      r.ServeRegisters.Load(),
		ServeUpdates:        r.ServeUpdates.Load(),
		ServeSheds:          r.ServeSheds.Load(),
		ServeEpochs:         r.ServeEpochs.Load(),
		ServePlans:          r.ServePlans.Load(),
		ServeClean:          r.ServeClean.Load(),
		ServeSnapshots:      r.ServeSnapshots.Load(),
		ServeRotations:      r.ServeRotations.Load(),
		ServeRecoveries:     r.ServeRecoveries.Load(),
		ServeTornRecords:    r.ServeTornRecords.Load(),
		ServeJournalErrors:  r.ServeJournalErrors.Load(),
		Bits:                r.Bits.Load(),
		RawBits:             r.Bits.raw(),
		AirTime:             r.AirTime.Load(),
		DrainTX:             r.DrainTX.Load(),
		DrainRX:             r.DrainRX.Load(),
		SwitchEnergy:        r.SwitchEnergy.Load(),
		EnergyPerBit:        r.EnergyPerBit.snapshot(),
		LPSolveLatency:      r.LPSolveLatency.snapshot(),
		ServeApplyLatency:   r.ServeApplyLatency.snapshot(),
	}
	for i := range s.ModeBits {
		s.ModeBits[i] = r.ModeBits[i].Load()
		s.ModeTime[i] = r.ModeTime[i].Load()
	}
	cs := linkcache.Snapshot()
	s.Cache = CacheSnapshot{
		Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
		Entries: cs.Entries, Shards: cs.Shards,
	}
	if r.Tracer != nil {
		s.TraceTotal = r.Tracer.Total()
		s.TraceRetained = len(r.Tracer.Events())
	}
	return s
}

// Canonical returns the snapshot with the non-deterministic sections
// zeroed: wall-clock latency buckets (machine-speed dependent; the
// observation *count* is kept, since it equals LPSolves) and the
// process-global cache counters (racing planners can split a miss).
// Canonical snapshots are bit-identical at any worker count — the
// determinism contract the golden tests pin.
func (s Snapshot) Canonical() Snapshot {
	s.LPSolveLatency.Bounds = nil
	s.LPSolveLatency.Counts = nil
	s.LPSolveLatency.Sum = 0
	s.ServeApplyLatency.Bounds = nil
	s.ServeApplyLatency.Counts = nil
	s.ServeApplyLatency.Sum = 0
	s.Cache = CacheSnapshot{}
	s.TraceTotal, s.TraceRetained = 0, 0
	return s
}

// ModeBitFraction returns the fraction of delivered bits carried by a
// mode (0 when nothing was delivered).
func (s *Snapshot) ModeBitFraction(m phy.Mode) float64 {
	if s.Bits <= 0 {
		return 0
	}
	return s.ModeBits[m] / s.Bits
}

// ModeTimeFraction returns the fraction of air time spent in a mode.
func (s *Snapshot) ModeTimeFraction(m phy.Mode) float64 {
	if s.AirTime <= 0 {
		return 0
	}
	return s.ModeTime[m] / s.AirTime
}

// AvgEnergyPerBit returns total energy at both endpoints per delivered
// bit in J/bit (0 when nothing was delivered).
func (s *Snapshot) AvgEnergyPerBit() float64 {
	if s.Bits <= 0 {
		return 0
	}
	return (s.DrainTX + s.DrainRX) / s.Bits
}

// DrainRatio returns the TX:RX energy-consumption ratio — the quantity
// Eq. (1) steers toward the battery ratio E1:E2 (+Inf when the RX side
// spent nothing).
func (s *Snapshot) DrainRatio() float64 {
	if s.DrainRX <= 0 {
		return math.Inf(1)
	}
	return s.DrainTX / s.DrainRX
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteTable renders the snapshot as human-readable ASCII tables: the
// mode occupancy split, the energy accounting, the solver and engine
// counters, and the resilience events.
func (s *Snapshot) WriteTable(w io.Writer) error {
	fmt.Fprintln(w, "== Mode occupancy ==")
	rows := [][]string{}
	for _, m := range phy.Modes {
		rows = append(rows, []string{
			m.String(),
			fmt.Sprintf("%.4g", s.ModeBits[m]),
			fmt.Sprintf("%5.1f%%", 100*s.ModeBitFraction(m)),
			fmt.Sprintf("%.4g", s.ModeTime[m]),
			fmt.Sprintf("%5.1f%%", 100*s.ModeTimeFraction(m)),
		})
	}
	if err := ascii.Table(w, []string{"Mode", "Bits", "Bit frac", "Time s", "Time frac"}, rows); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n== Energy ==")
	rows = [][]string{
		{"delivered bits", fmt.Sprintf("%.6g", s.Bits)},
		{"air time (s)", fmt.Sprintf("%.6g", s.AirTime)},
		{"TX drain (J)", fmt.Sprintf("%.6g", s.DrainTX)},
		{"RX drain (J)", fmt.Sprintf("%.6g", s.DrainRX)},
		{"TX:RX drain ratio", fmt.Sprintf("%.4g", s.DrainRatio())},
		{"switch overhead (J)", fmt.Sprintf("%.6g", s.SwitchEnergy)},
		{"energy/bit (nJ)", fmt.Sprintf("%.4g", 1e9*s.AvgEnergyPerBit())},
	}
	if err := ascii.Table(w, []string{"Quantity", "Value"}, rows); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n== Engine ==")
	rows = [][]string{
		{"braid runs", fmt.Sprint(s.BraidRuns)},
		{"epochs", fmt.Sprint(s.Epochs)},
		{"LP solves", fmt.Sprint(s.LPSolves)},
		{"LP warm starts", fmt.Sprint(s.LPWarmStarts)},
		{"LP cold fallbacks", fmt.Sprint(s.LPColdFallbacks)},
		{"batch rounds", fmt.Sprint(s.BatchRounds)},
		{"alloc memo reuses", fmt.Sprint(s.AllocReuses)},
		{"mode switches", fmt.Sprint(s.Switches)},
		{"hub rounds", fmt.Sprint(s.HubRounds)},
		{"member rounds", fmt.Sprint(s.MemberRounds)},
		{"net rounds", fmt.Sprint(s.NetRounds)},
		{"relay rounds", fmt.Sprint(s.RelayRounds)},
		{"carrier shares", fmt.Sprint(s.CarrierShares)},
		{"interfered rounds", fmt.Sprint(s.InterferedRounds)},
		{"relay bits", fmt.Sprintf("%.4g", s.RelayBits)},
		{"cache hits/misses", fmt.Sprintf("%d/%d", s.Cache.Hits, s.Cache.Misses)},
		{"cache evictions", fmt.Sprint(s.Cache.Evictions)},
	}
	if err := ascii.Table(w, []string{"Counter", "Value"}, rows); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n== Serve ==")
	rows = [][]string{
		{"registers", fmt.Sprint(s.ServeRegisters)},
		{"updates", fmt.Sprint(s.ServeUpdates)},
		{"sheds", fmt.Sprint(s.ServeSheds)},
		{"epochs", fmt.Sprint(s.ServeEpochs)},
		{"plans solved", fmt.Sprint(s.ServePlans)},
		{"clean skips", fmt.Sprint(s.ServeClean)},
		{"snapshots", fmt.Sprint(s.ServeSnapshots)},
		{"segment rotations", fmt.Sprint(s.ServeRotations)},
		{"recoveries", fmt.Sprint(s.ServeRecoveries)},
		{"torn records", fmt.Sprint(s.ServeTornRecords)},
		{"journal errors", fmt.Sprint(s.ServeJournalErrors)},
	}
	if err := ascii.Table(w, []string{"Counter", "Value"}, rows); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n== Resilience ==")
	rows = [][]string{
		{"fallbacks", fmt.Sprint(s.Fallbacks)},
		{"fallbacks suppressed", fmt.Sprint(s.FallbacksSuppressed)},
		{"backoff waits", fmt.Sprint(s.BackoffWaits)},
		{"link deaths", fmt.Sprint(s.LinkDeaths)},
		{"replans", fmt.Sprint(s.Replans)},
		{"quarantines", fmt.Sprint(s.Quarantines)},
		{"outage rounds", fmt.Sprint(s.OutageRounds)},
		{"hub deaths", fmt.Sprint(s.HubDeaths)},
	}
	return ascii.Table(w, []string{"Event", "Count"}, rows)
}

// promLabel maps a mode index to its Prometheus label value.
func promLabel(m phy.Mode) string { return m.String() }

// writeHist writes one histogram in Prometheus exposition format.
func writeHist(w io.Writer, name, help string, h *HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(h.Sum, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as *_total, float series as gauges
// in base units, and both histograms with cumulative buckets.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	counter("braidio_braid_runs_total", "Completed braid engine executions.", s.BraidRuns)
	counter("braidio_epochs_total", "Allocation epochs.", s.Epochs)
	counter("braidio_lp_solves_total", "Offload optimizer solves.", s.LPSolves)
	counter("braidio_lp_warm_starts_total", "Simplex solves warm-started from a prior basis.", s.LPWarmStarts)
	counter("braidio_lp_cold_fallbacks_total", "Warm-start attempts that fell back to a cold solve.", s.LPColdFallbacks)
	counter("braidio_batch_rounds_total", "Planning rounds solved through the batched columnar path.", s.BatchRounds)
	counter("braidio_alloc_reuses_total", "Allocations served from the ratio memo.", s.AllocReuses)
	counter("braidio_mode_switches_total", "Radio mode transitions.", s.Switches)
	counter("braidio_frames_delivered_total", "MAC data frames delivered.", s.FramesDelivered)
	counter("braidio_frames_lost_total", "MAC data frames lost after retries.", s.FramesLost)
	counter("braidio_retransmissions_total", "MAC retransmission attempts.", s.Retransmissions)
	counter("braidio_probes_total", "MAC probe frames.", s.Probes)
	counter("braidio_recomputes_total", "MAC allocation recomputations.", s.Recomputes)
	counter("braidio_fallbacks_total", "Executed active-mode fallbacks.", s.Fallbacks)
	counter("braidio_fallbacks_suppressed_total", "Fallback triggers absorbed by hysteresis.", s.FallbacksSuppressed)
	counter("braidio_backoff_waits_total", "Recompute boundaries spent in re-entry backoff.", s.BackoffWaits)
	counter("braidio_link_deaths_total", "Links declared dead after bounded recovery.", s.LinkDeaths)
	counter("braidio_hub_rounds_total", "Hub scheduling rounds.", s.HubRounds)
	counter("braidio_member_rounds_total", "Committed member-rounds.", s.MemberRounds)
	counter("braidio_replans_total", "Commit-time re-solves after snapshot shortfall.", s.Replans)
	counter("braidio_quarantines_total", "Members quarantined.", s.Quarantines)
	counter("braidio_outage_rounds_total", "Member-rounds lost to injected outages.", s.OutageRounds)
	counter("braidio_hub_deaths_total", "Hub batteries exhausted mid-run.", s.HubDeaths)
	counter("braidio_net_rounds_total", "Network scheduling rounds planned.", s.NetRounds)
	counter("braidio_relay_rounds_total", "Member-rounds committed through a 2-hop relay.", s.RelayRounds)
	counter("braidio_carrier_shares_total", "Member-rounds committed on a borrowed carrier.", s.CarrierShares)
	counter("braidio_interfered_rounds_total", "Member-rounds planned under co-channel interference.", s.InterferedRounds)
	counter("braidio_serve_registers_total", "Member registrations admitted by the serve daemon.", s.ServeRegisters)
	counter("braidio_serve_updates_total", "Member/hub state updates admitted by the serve daemon.", s.ServeUpdates)
	counter("braidio_serve_sheds_total", "Requests dropped by serve admission backpressure.", s.ServeSheds)
	counter("braidio_serve_epochs_total", "Serving epochs executed.", s.ServeEpochs)
	counter("braidio_serve_plans_total", "Member plans solved (dirty members only).", s.ServePlans)
	counter("braidio_serve_clean_total", "Member-epochs skipped as within-tolerance.", s.ServeClean)
	counter("braidio_serve_snapshots_total", "Journal snapshot records written.", s.ServeSnapshots)
	counter("braidio_serve_rotations_total", "Journal segment rotations.", s.ServeRotations)
	counter("braidio_serve_recoveries_total", "Daemon startups recovered from a journal directory.", s.ServeRecoveries)
	counter("braidio_serve_torn_records_total", "Torn trailing journal records truncated by recovery.", s.ServeTornRecords)
	counter("braidio_serve_journal_errors_total", "Journal write failures and records dropped while broken.", s.ServeJournalErrors)
	counter("braidio_linkcache_hits_total", "PHY link cache hits.", s.Cache.Hits)
	counter("braidio_linkcache_misses_total", "PHY link cache misses.", s.Cache.Misses)
	counter("braidio_linkcache_evictions_total", "PHY link cache evictions.", s.Cache.Evictions)
	gauge("braidio_linkcache_entries", "Resident PHY link cache entries.", float64(s.Cache.Entries))
	gauge("braidio_bits_delivered", "Delivered payload bits.", s.Bits)
	gauge("braidio_air_time_seconds", "Cumulative on-air time.", s.AirTime)
	gauge("braidio_drain_tx_joules", "Energy drawn at the data transmitter.", s.DrainTX)
	gauge("braidio_drain_rx_joules", "Energy drawn at the data receiver.", s.DrainRX)
	gauge("braidio_switch_energy_joules", "Mode-switch overhead energy.", s.SwitchEnergy)
	gauge("braidio_relay_bits", "Payload bits delivered over 2-hop relays.", s.RelayBits)
	fmt.Fprintf(w, "# HELP braidio_mode_bits Delivered bits per mode.\n# TYPE braidio_mode_bits gauge\n")
	for _, m := range phy.Modes {
		fmt.Fprintf(w, "braidio_mode_bits{mode=%q} %s\n", promLabel(m),
			strconv.FormatFloat(s.ModeBits[m], 'g', -1, 64))
	}
	fmt.Fprintf(w, "# HELP braidio_mode_time_seconds Air time per mode.\n# TYPE braidio_mode_time_seconds gauge\n")
	for _, m := range phy.Modes {
		fmt.Fprintf(w, "braidio_mode_time_seconds{mode=%q} %s\n", promLabel(m),
			strconv.FormatFloat(s.ModeTime[m], 'g', -1, 64))
	}
	writeHist(w, "braidio_energy_per_bit_joules", "Per-run delivered energy per bit.", &s.EnergyPerBit)
	writeHist(w, "braidio_lp_solve_latency_nanoseconds", "Offload solve wall-clock latency.", &s.LPSolveLatency)
	writeHist(w, "braidio_serve_apply_latency_nanoseconds", "Serve epoch apply-phase wall-clock latency.", &s.ServeApplyLatency)
	return nil
}
