package braidio_test

import (
	"fmt"

	"braidio"
)

// ExampleNewPair shows the core workflow: pair two devices, plan the
// carrier offload, and run a transfer.
func ExampleNewPair() {
	watch, _ := braidio.DeviceByName("Apple Watch")
	phone, _ := braidio.DeviceByName("iPhone 6S")

	pair := braidio.NewPair(watch, phone, 0.5)
	plan, err := pair.Plan()
	if err != nil {
		fmt.Println(err)
		return
	}
	// The phone has ~8× the energy, so the plan leans on backscatter:
	// the watch reflects the phone's carrier.
	fmt.Printf("dominant mode: %v\n", plan.Dominant())
	fmt.Printf("regime: %v\n", pair.Regime())
	// Output:
	// dominant mode: backscatter
	// regime: A (all links)
}

// ExamplePair_Plan shows how the allocation tracks the battery ratio.
func ExamplePair_Plan() {
	band, _ := braidio.DeviceByName("Nike Fuel Band")
	laptop, _ := braidio.DeviceByName("MacBook Pro 15")

	// A tiny transmitter feeding a huge receiver: pure backscatter.
	plan, err := braidio.NewPair(band, laptop, 0.5).Plan()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("backscatter share: %.0f%%\n", 100*plan.Fraction(braidio.ModeBackscatter))

	// The reverse direction: the huge laptop transmits, so it carries
	// the carrier and the band listens passively.
	plan, err = braidio.NewPair(laptop, band, 0.5).Plan()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("passive share: %.0f%%\n", 100*plan.Fraction(braidio.ModePassive))
	// Output:
	// backscatter share: 100%
	// passive share: 100%
}

// ExampleModel_Regime walks through the operating regimes of Fig. 8.
func ExampleModel_Regime() {
	m := braidio.NewModel()
	for _, d := range []braidio.Meter{0.5, 3, 6} {
		fmt.Printf("%.1f m: %v\n", float64(d), m.Regime(d))
	}
	// Output:
	// 0.5 m: A (all links)
	// 3.0 m: B (active+passive)
	// 6.0 m: C (active only)
}

// ExampleNewHub builds a small body-area star network.
func ExampleNewHub() {
	phone, _ := braidio.DeviceByName("iPhone 6S")
	watch, _ := braidio.DeviceByName("Apple Watch")

	h := braidio.NewHub(phone)
	if err := h.Add(braidio.HubMember{Device: watch, Distance: 0.4, Load: 5000}); err != nil {
		fmt.Println(err)
		return
	}
	res, err := h.Run(3600, 4) // one hour in four rounds
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("delivered %.1f MB; hub paid %.0f%% of the bill\n",
		res.TotalBits()/8e6, 100*res.Members[0].HubShare())
	// Output:
	// delivered 2.2 MB; hub paid 89% of the bill
}

// ExampleWithMetrics attaches a metrics recorder to a pair and reads
// mode occupancy and energy-per-bit off the snapshot after a transfer.
func ExampleWithMetrics() {
	watch, _ := braidio.DeviceByName("Apple Watch")
	phone, _ := braidio.DeviceByName("iPhone 6S")

	rec := braidio.NewMetricsRecorder()
	pair := braidio.NewPair(watch, phone, 0.5, braidio.WithMetrics(rec))
	if _, err := pair.Transfer(); err != nil {
		fmt.Println(err)
		return
	}

	// The recorder saw the whole run: occupancy per mode, total drains,
	// and the energy-per-bit distribution.
	s := rec.Snapshot()
	fmt.Printf("backscatter bits: %.0f%%\n", 100*s.ModeBitFraction(braidio.ModeBackscatter))
	fmt.Printf("passive bits: %.0f%%\n", 100*s.ModeBitFraction(braidio.ModePassive))
	fmt.Printf("energy/bit: %.0f nJ\n", 1e9*s.AvgEnergyPerBit())
	fmt.Printf("drain ratio tracks battery ratio: %.2f vs %.2f\n",
		s.DrainRatio(), float64(watch.Capacity/phone.Capacity))
	// Output:
	// backscatter bits: 92%
	// passive bits: 8%
	// energy/bit: 141 nJ
	// drain ratio tracks battery ratio: 0.12 vs 0.12
}
