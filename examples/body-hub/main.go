// Body-hub: a phone as the energy-rich hub of a body-area network. Three
// wearables with tiny batteries — a fitness band, a smartwatch, and
// camera glasses — each keep a braided Braidio pair with the phone; the
// hub layer schedules them and shares the phone's battery across all
// three, re-solving each member's carrier-offload allocation as the
// phone drains.
//
// This extends the paper's pairwise evaluation to the multi-device
// setting its introduction motivates: "a significant fraction of the
// energy cost of communication [can] be offloaded to the device that has
// more energy i.e. the mobile phone".
//
// Run with:
//
//	go run ./examples/body-hub
package main

import (
	"fmt"
	"log"
	"os"

	"braidio"
	"braidio/internal/ascii"
)

func main() {
	phone, _ := braidio.DeviceByName("iPhone 6S")
	band, _ := braidio.DeviceByName("Nike Fuel Band")
	watch, _ := braidio.DeviceByName("Apple Watch")
	glasses, _ := braidio.DeviceByName("Pivothead")

	h := braidio.NewHub(phone)
	for _, m := range []braidio.HubMember{
		// Loads are average payload bits/second over the day.
		{Device: band, Distance: 0.4, Load: 1_000},      // activity logs
		{Device: watch, Distance: 0.4, Load: 5_000},     // notifications + sensors
		{Device: glasses, Distance: 0.6, Load: 200_000}, // clips
	} {
		if err := h.Add(m); err != nil {
			log.Fatal(err)
		}
	}

	// Serve one day of traffic in hourly rounds.
	const day = 24 * 3600
	res, err := h.Run(day, 24)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hub: %s (%.2f Wh) serving %d wearables for 24 h\n\n",
		phone.Name, float64(phone.Capacity), len(h.Members()))

	bt := braidio.BluetoothBaseline()
	btTX, _ := bt.PerBit()
	rows := [][]string{}
	for _, mr := range res.Members {
		budget := float64(mr.Member.Device.Capacity.Joules())
		btJ := mr.Bits * float64(btTX)
		rows = append(rows, []string{
			mr.Member.Device.Name,
			fmt.Sprintf("%.0f MB", mr.Bits/8e6),
			fmt.Sprintf("%.4g J", float64(mr.MemberDrain)),
			fmt.Sprintf("%.4g J", btJ),
			fmt.Sprintf("%.0f%%", 100*mr.HubShare()),
			fmt.Sprintf("%.0f days", budget/float64(mr.MemberDrain)),
			fmt.Sprintf("%.1f days", budget/btJ),
		})
	}
	header := []string{"Wearable", "Delivered", "Radio J/day", "(Bluetooth)",
		"Hub share", "Radio-only lifetime", "(Bluetooth)"}
	if err := ascii.Table(os.Stdout, header, rows); err != nil {
		log.Fatal(err)
	}

	phoneBudget := float64(phone.Capacity.Joules())
	fmt.Printf("\nhub radio bill: %.3g J/day — %.1f%% of the phone's battery per day\n",
		float64(res.HubDrain), 100*float64(res.HubDrain)/phoneBudget)
	fmt.Println("each wearable pays only its power-proportional sliver; the phone absorbs")
	fmt.Println("the body network for a small slice of its much larger battery.")
}
