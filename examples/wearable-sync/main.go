// Wearable-sync: the paper's motivating scenario. A fitness band with a
// 0.2 Wh battery syncs activity data to a phone several times an hour.
// The band's radio budget decides how many days it lasts; Braidio's
// carrier offload moves almost the whole radio bill to the phone.
//
// This example uses the packet-level MAC session (probing, braided
// scheduling, retransmission) rather than the analytic engine, and also
// demonstrates the fallback dynamics when the user walks away from the
// phone mid-sync.
//
// Run with:
//
//	go run ./examples/wearable-sync
package main

import (
	"fmt"
	"log"

	"braidio"
)

// syncPayload is one activity-log sync: 64 kB.
const syncPayload = 64 * 1024

func main() {
	band, _ := braidio.DeviceByName("Nike Fuel Band")
	phone, _ := braidio.DeviceByName("iPhone 6S")

	pair := braidio.NewPair(band, phone, 0.4)
	session, err := pair.NewSession(2016)
	if err != nil {
		log.Fatal(err)
	}

	// Sync 1: close to the phone. The allocation should be almost pure
	// backscatter — the band reflects the phone's carrier.
	frames := syncPayload / 240
	for i := 0; i < frames; i++ {
		if _, err := session.SendFrame(240); err != nil {
			log.Fatal(err)
		}
	}
	st := session.Stats()
	fmt.Println("sync #1 at 0.4 m:")
	fmt.Printf("  %d frames delivered, %d retransmissions, %d mode switches\n",
		st.FramesDelivered, st.Retransmissions, st.ModeSwitches)
	txJ, rxJ := session.Drains()
	fmt.Printf("  band spent %.3g J, phone spent %.3g J (%.0f× offloaded)\n",
		float64(txJ), float64(rxJ), float64(rxJ/txJ))

	// The user walks off with the band; the link degrades and the MAC
	// falls back toward the active radio.
	session.SetDistance(3.0)
	for i := 0; i < frames; i++ {
		if _, err := session.SendFrame(240); err != nil {
			log.Fatal(err)
		}
	}
	st2 := session.Stats()
	fmt.Println("sync #2 after walking to 3 m:")
	fmt.Printf("  fallbacks: %d, recomputes: %d\n", st2.Fallbacks, st2.Recomputes)
	fmt.Printf("  backscatter frames during this sync: %d (out of backscatter range)\n",
		st2.ModeFrames[braidio.ModeBackscatter]-st.ModeFrames[braidio.ModeBackscatter])

	// Lifetime arithmetic: how many syncs does the band's battery fund,
	// radio-wise, under each technology?
	fmt.Println("\nlifetime (radio budget only, syncing every 10 minutes at 0.4 m):")
	perSyncBraidio := float64(txJ) / 2 // two syncs above, first one dominated by 0.4 m
	bt := braidio.BluetoothBaseline()
	btTx, _ := bt.PerBit()
	perSyncBT := float64(btTx) * 8 * syncPayload
	budget := float64(band.Capacity.Joules())
	fmt.Printf("  Braidio:   %.0f syncs (%.0f days)\n",
		budget/perSyncBraidio, budget/perSyncBraidio/144)
	fmt.Printf("  Bluetooth: %.0f syncs (%.1f days)\n",
		budget/perSyncBT, budget/perSyncBT/144)
	fmt.Printf("  improvement: %.0f×\n", perSyncBT/perSyncBraidio)
}
