// Camera-stream: the Pivothead scenario from the paper's §6.3 — a
// camera-equipped wearable streams 30 fps video to a laptop while the
// laptop sends back a low-rate control channel (the bidirectional case
// of Fig. 17). The laptop has ~60× the battery, so the offload layer
// parks the carrier on the laptop in both directions: the camera
// backscatters its frames up and envelope-detects the control channel
// down.
//
// This example drives the transfer through the discrete-event kernel
// with a video traffic source, showing how the pieces compose.
//
// Run with:
//
//	go run ./examples/camera-stream
package main

import (
	"fmt"
	"log"

	"braidio"
	"braidio/internal/sim"
	"braidio/internal/units"
)

func main() {
	camera, _ := braidio.DeviceByName("Pivothead")
	laptop, _ := braidio.DeviceByName("MacBook Pro 13")

	// 30 fps at ~3 kB per compressed frame ≈ 720 kbps offered — inside
	// the braided link's ~900 kbps goodput at short range.
	video := sim.VideoStream(30, 3072)
	fmt.Printf("offered video load: %v\n", sim.OfferedLoad(video))

	// Drive one minute of streaming through the event kernel against a
	// packet-level session.
	pair := braidio.NewPair(camera, laptop, 0.5)
	session, err := pair.NewSession(7)
	if err != nil {
		log.Fatal(err)
	}
	engine := sim.NewEngine()
	var scheduleNext func(at units.Second)
	frames, drops := 0, 0
	scheduleNext = func(at units.Second) {
		arrival := video.Next(at)
		if arrival.Time > 60 {
			return
		}
		engine.At(arrival.Time, func() {
			// A 4 kB video frame spans several link frames.
			for sent := 0; sent < arrival.Bytes; sent += 240 {
				ok, err := session.SendFrame(240)
				if err != nil {
					log.Fatal(err)
				}
				if !ok {
					drops++
				}
			}
			frames++
			scheduleNext(engine.Now())
		})
	}
	scheduleNext(0)
	engine.Run(10_000)

	st := session.Stats()
	camJ, lapJ := session.Drains()
	fmt.Printf("one minute of video: %d frames, %d drops, %d link frames\n",
		frames, drops, st.FramesDelivered)
	fmt.Printf("camera spent %.3g J, laptop spent %.3g J — %.0f× offloaded\n",
		float64(camJ), float64(lapJ), float64(lapJ/camJ))
	fmt.Printf("link time used: %.1f s of 60 (duty %.0f%%)\n",
		float64(st.AirTime), 100*float64(st.AirTime)/60)

	// Whole-battery view: the bidirectional scenario (video up, control
	// down) until a battery dies, vs Bluetooth.
	res, err := sim.RunBidirectional(braidio.NewModel(), 0.5, camera, laptop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull-battery bidirectional transfer: %.3g bits (%.2f hours of 1 Mbps video)\n",
		res.Bits, res.Bits/1e6/3600)
	fmt.Printf("gain over Bluetooth: %.0f×\n", res.Gain())

	// The paper's Fig. 15 headline for this pair: "Braidio improves
	// lifetime by 35× for communication between this device and a
	// laptop".
	uni, err := sim.RunPair(braidio.NewModel(), 0.5, camera, laptop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unidirectional camera→laptop gain: %.0f× (paper reports ≈35×)\n", uni.GainVsBluetooth())
}
