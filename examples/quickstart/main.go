// Quickstart: pair two devices, run one transfer, and look at where the
// energy went.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"braidio"
)

func main() {
	watch, ok := braidio.DeviceByName("Apple Watch")
	if !ok {
		log.Fatal("catalog missing Apple Watch")
	}
	phone, ok := braidio.DeviceByName("iPhone 6S")
	if !ok {
		log.Fatal("catalog missing iPhone 6S")
	}

	// The watch (0.78 Wh) streams sensor data to the phone (6.55 Wh)
	// from half a meter away.
	pair := braidio.NewPair(watch, phone, 0.5)

	// What will the carrier-offload layer do? The phone has ~8× the
	// energy, so it should carry the burden: the watch transmits mostly
	// by backscattering the phone's carrier.
	plan, err := pair.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("planned mode mix:")
	for _, mode := range []braidio.Mode{braidio.ModeActive, braidio.ModePassive, braidio.ModeBackscatter} {
		fmt.Printf("  %-12s %5.1f%%\n", mode, 100*plan.Fraction(mode))
	}

	// Run the transfer until one battery dies.
	res, err := pair.Transfer()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelivered %.3g bits (%.3g GB)\n", res.Bits, res.Bits/8e9)
	fmt.Printf("watch spent %.1f J, phone spent %.1f J — ratio %.2f vs battery ratio %.2f\n",
		float64(res.Drain1), float64(res.Drain2),
		float64(res.Drain1/res.Drain2), float64(watch.Capacity/phone.Capacity))

	// How much better is that than Bluetooth?
	gain, err := pair.GainVsBluetooth()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("that is %.2f× the bits Bluetooth would have moved\n", gain)
}
