// Regime-explorer: walk two Braidio radios apart and watch the operating
// region evolve (Figs. 8 and 14) — which links survive, at which
// bitrates, what TX:RX power asymmetry is still achievable, and what the
// offload layer would do for a concrete battery pairing at each step.
//
// Run with:
//
//	go run ./examples/regime-explorer
//	go run ./examples/regime-explorer -tx "Pebble Watch" -rx "Surface Book"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"braidio"
	"braidio/internal/ascii"
	"braidio/internal/core"
	"braidio/internal/phy"
	"braidio/internal/units"
)

func main() {
	txName := flag.String("tx", "Apple Watch", "transmitting device")
	rxName := flag.String("rx", "iPhone 6S", "receiving device")
	flag.Parse()

	tx, ok := braidio.DeviceByName(*txName)
	if !ok {
		log.Fatalf("unknown device %q", *txName)
	}
	rx, ok := braidio.DeviceByName(*rxName)
	if !ok {
		log.Fatalf("unknown device %q", *rxName)
	}

	model := braidio.NewModel()
	fmt.Printf("%s (%.2f Wh) → %s (%.2f Wh), walking from 0.3 m to 6 m\n\n",
		tx.Name, float64(tx.Capacity), rx.Name, float64(rx.Capacity))

	header := []string{"Distance", "Regime", "Links (mode@rate)", "Ratio span", "Offload mix", "Gain vs BT"}
	rows := [][]string{}
	for _, d := range []units.Meter{0.3, 0.6, 0.95, 1.5, 1.85, 2.3, 2.45, 3.0, 4.0, 4.5, 5.0, 5.2, 6.0} {
		region := core.RegionAt(model, d)
		links := ""
		for i, p := range region.Points {
			if i > 0 {
				links += " "
			}
			links += fmt.Sprintf("%v@%v", shortMode(p.Mode), p.Rate)
		}
		min, max := region.RatioSpan()
		span := fmt.Sprintf("%.3g..%.3g", min, max)

		mix := "—"
		gain := "—"
		alloc, err := core.Optimize(model.Characterize(d), tx.Capacity.Joules(), rx.Capacity.Joules())
		if err == nil {
			mix = ""
			for _, mode := range phy.Modes {
				if f := alloc.Fraction(mode); f > 0.005 {
					if mix != "" {
						mix += " "
					}
					mix += fmt.Sprintf("%s:%.0f%%", shortMode(mode), 100*f)
				}
			}
			pair := braidio.NewPair(tx, rx, d)
			if g, err := pair.GainVsBluetooth(); err == nil {
				gain = fmt.Sprintf("%.3g×", g)
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f m", float64(d)),
			model.Regime(d).String(),
			links, span, mix, gain,
		})
	}
	if err := ascii.Table(os.Stdout, header, rows); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nhow to read this: in regime A the carrier can live at either end, so the")
	fmt.Println("offload layer braids passive and backscatter to match the battery ratio; in")
	fmt.Println("regime B only the receiver can go passive; in regime C Braidio degenerates")
	fmt.Println("to a symmetric active radio and the gain approaches 1×.")
}

func shortMode(m phy.Mode) string {
	switch m {
	case phy.ModeActive:
		return "act"
	case phy.ModePassive:
		return "pas"
	case phy.ModeBackscatter:
		return "bs"
	}
	return m.String()
}
