// QoS-stream: the tension between power proportionality and a live
// deadline. A fitness band streams real-time audio/telemetry to a phone
// while the user walks around the room. At 2 m the backscatter link only
// decodes at 10 kbps; pure power-proportional braiding would schedule
// those slow slots and the stream would stall. PlanQoS adds a
// minimum-throughput floor to Eq. 1 and the braid sheds what the
// deadline cannot absorb — paying with the band's lifetime.
//
// Run with:
//
//	go run ./examples/qos-stream
package main

import (
	"fmt"
	"log"
	"os"

	"braidio"
	"braidio/internal/ascii"
)

func main() {
	band, _ := braidio.DeviceByName("Nike Fuel Band")
	phone, _ := braidio.DeviceByName("iPhone 6S")

	fmt.Println("Nike Fuel Band → iPhone 6S, live stream needing 300 kbps:")
	fmt.Println()

	header := []string{"Distance", "Plan (unconstrained)", "Throughput", "Plan (300 kbps floor)", "Throughput", "Lifetime cost"}
	rows := [][]string{}
	for _, d := range []braidio.Meter{0.5, 1.2, 2.0} {
		pair := braidio.NewPair(band, phone, d)
		plain, err := pair.Plan()
		if err != nil {
			log.Fatal(err)
		}
		qos, err := pair.PlanQoS(300_000)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f m", float64(d)),
			mix(plain),
			plain.Throughput().String(),
			mix(qos),
			qos.Throughput().String(),
			fmt.Sprintf("%+.1f%%", 100*(qos.Bits/plain.Bits-1)),
		})
	}
	if err := ascii.Table(os.Stdout, header, rows); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("reading: at short range all modes run 1 Mbps, so the floor is free. In the")
	fmt.Println("100 kbps/10 kbps backscatter regimes the unconstrained plan's throughput")
	fmt.Println("collapses below the stream rate; the QoS plan keeps the deadline by trading")
	fmt.Println("away a slice of the band's radio lifetime.")
}

// mix summarizes an allocation's mode fractions.
func mix(a *braidio.Allocation) string {
	out := ""
	for _, m := range []braidio.Mode{braidio.ModeActive, braidio.ModePassive, braidio.ModeBackscatter} {
		if f := a.Fraction(m); f > 0.005 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s:%.0f%%", short(m), 100*f)
		}
	}
	return out
}

// short abbreviates a mode name.
func short(m braidio.Mode) string {
	switch m {
	case braidio.ModeActive:
		return "act"
	case braidio.ModePassive:
		return "pas"
	default:
		return "bs"
	}
}
