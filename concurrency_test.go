package braidio

// Concurrency tests for the public API: transfers on one Pair run on
// per-call copies of the braid configuration, so concurrent use is safe
// and deterministic. Run with -race (the Makefile's race target) to
// verify.

import (
	"sync"
	"testing"
)

func TestPairConcurrentTransfers(t *testing.T) {
	watch, _ := DeviceByName("Apple Watch")
	phone, _ := DeviceByName("iPhone 6S")
	p := NewPair(watch, phone, 0.5)

	const workers = 8
	full := make([]*Result, workers)
	bounded := make([]*Result, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Interleave unbounded and bounded transfers: these race on
			// the shared MaxBits field unless runs copy the config.
			r1, err := p.Transfer()
			if err != nil {
				t.Error(err)
				return
			}
			r2, err := p.TransferBits(1e8)
			if err != nil {
				t.Error(err)
				return
			}
			full[i], bounded[i] = r1, r2
		}(i)
	}
	wg.Wait()

	for i := 1; i < workers; i++ {
		if full[i] == nil || bounded[i] == nil {
			t.Fatal("missing results")
		}
		if full[i].Bits != full[0].Bits {
			t.Errorf("concurrent Transfer %d delivered %v bits, first %v", i, full[i].Bits, full[0].Bits)
		}
		if bounded[i].Bits != bounded[0].Bits {
			t.Errorf("concurrent TransferBits %d delivered %v bits, first %v", i, bounded[i].Bits, bounded[0].Bits)
		}
	}
	if bounded[0].Bits > 1e8*1.001 {
		t.Errorf("TransferBits overshot its bound: %v bits", bounded[0].Bits)
	}
	if full[0].Bits <= bounded[0].Bits {
		t.Errorf("unbounded transfer (%v bits) did not exceed the bounded one (%v)", full[0].Bits, bounded[0].Bits)
	}
}

// TestPairConcurrentResume exercises Resume on distinct battery pairs
// from many goroutines.
func TestPairConcurrentResume(t *testing.T) {
	watch, _ := DeviceByName("Apple Watch")
	phone, _ := DeviceByName("iPhone 6S")
	p := NewPair(watch, phone, 0.5)

	const workers = 4
	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := watch.NewBattery()
			rx := phone.NewBattery()
			r, err := p.Resume(tx, rx)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i] == nil {
			t.Fatal("missing result")
		}
		if results[i].Bits != results[0].Bits {
			t.Errorf("concurrent Resume %d delivered %v bits, first %v", i, results[i].Bits, results[0].Bits)
		}
	}
}
