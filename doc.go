// Package braidio is a simulation-backed implementation of Braidio, the
// integrated active-passive radio for mobile devices with asymmetric
// energy budgets (Hu, Zhang, Rostami, Ganesan — SIGCOMM 2016).
//
// # What Braidio is
//
// Mobile devices differ in battery capacity by three orders of magnitude
// (a laptop vs a fitness band), yet conventional radios burn roughly the
// same power at both ends of a link. Braidio makes the power burden of
// communication movable: it integrates an active (BLE-style) transceiver
// with a passive backscatter front end — an RF charge pump, an
// instrumentation amplifier, a comparator, a SAW filter, and a pair of
// diversity antennas — so a link can run in three modes, named after
// where the carrier lives:
//
//   - Active: both ends run a carrier (a normal radio link).
//   - Passive: only the transmitter runs a carrier; the receiver is a
//     near-zero-power envelope detector.
//   - Backscatter: only the receiver runs a carrier; the transmitter is
//     a reflecting tag drawing tens of microwatts.
//
// The carrier-offload layer braids these modes — interleaving them in
// computed proportions — so two endpoints consume energy in proportion
// to what each has. The supported transmitter:receiver power ratios span
// 1:2546 to 3546:1, seven orders of magnitude.
//
// # What this module contains
//
// The paper's artifact is hardware; this module reproduces the system as
// a calibrated simulation (the paper's own evaluation, §6.3, is driven
// by exactly such a simulator built from link characterization). The
// public API in this package fronts:
//
//   - the calibrated PHY (modes, ranges, bitrates, per-bit costs),
//   - the carrier-offload optimizer (Eq. 1 of the paper),
//   - the braid engine (drain two batteries power-proportionally),
//   - the packet-level MAC (probing, fallback, retransmission),
//   - the evaluation scenarios (the gain matrices and sweeps of
//     Figs. 15–18) and their Bluetooth / best-single-mode baselines.
//
// The substrates — link budgets, fading, the charge-pump circuit
// simulation, the analog front-end models, the phase-cancellation field
// maps — live in internal packages and surface through the experiment
// runners in cmd/braidio-bench.
//
// # Quick start
//
//	watch, _ := braidio.DeviceByName("Apple Watch")
//	phone, _ := braidio.DeviceByName("iPhone 6S")
//	pair := braidio.NewPair(watch, phone, 0.5)
//	res, err := pair.Transfer()
//	if err != nil { ... }
//	fmt.Printf("moved %.0f bits; watch spent %v J, phone %v J\n",
//		res.Bits, res.Drain1, res.Drain2)
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// paper-vs-reproduction numbers.
package braidio
