package braidio

// CLI smoke tests: build and run each command the repository ships,
// asserting their headline output. Guarded by -short since each run
// compiles a binary.

import (
	"os/exec"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIBenchList(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "./cmd/braidio-bench", "-list")
	for _, want := range []string{"fig15", "table5", "ext-harvest", "ablation-solver"} {
		if !strings.Contains(out, want) {
			t.Errorf("bench -list missing %q", want)
		}
	}
}

func TestCLIBenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "./cmd/braidio-bench", "-exp", "fig9")
	if !strings.Contains(out, "1:2546") || !strings.Contains(out, "3546:1") {
		t.Errorf("fig9 report missing the headline ratios:\n%s", out)
	}
}

func TestCLISim(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "./cmd/braidio-sim", "-tx", "Nike Fuel Band", "-rx", "MacBook Pro 15", "-d", "0.5")
	if !strings.Contains(out, "gain vs Bluetooth") {
		t.Errorf("sim output missing gain line:\n%s", out)
	}
	if !strings.Contains(out, "backscatter") {
		t.Errorf("sim output missing mode breakdown:\n%s", out)
	}
}

func TestCLILink(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "./cmd/braidio-link")
	for _, want := range []string{"Operational ranges", "Regime boundaries", "1.80 m", "2.40 m"} {
		if !strings.Contains(out, want) {
			t.Errorf("link output missing %q", want)
		}
	}
}

func TestCLIField(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "./cmd/braidio-field", "-grid", "11")
	if !strings.Contains(out, "worst case with diversity") {
		t.Errorf("field output missing diversity summary:\n%s", out)
	}
}

// TestCLISimFleet: the fleet mode prints the population summary, and
// the output is byte-identical across worker counts — the CLI-level
// witness of the engine's determinism contract.
func TestCLISimFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	args := []string{"./cmd/braidio-sim", "-fleet", "4", "-members", "2", "-horizon", "900", "-rounds", "3"}
	seq := runCLI(t, append(args, "-workers", "1")...)
	for _, want := range []string{"fleet bits delivered", "hubs exhausted: 0/4", "offload solves"} {
		if !strings.Contains(seq, want) {
			t.Errorf("fleet output missing %q:\n%s", want, seq)
		}
	}
	par := runCLI(t, append(args, "-workers", "8")...)
	if seq != par {
		t.Errorf("fleet output differs between -workers 1 and 8:\n--- w1:\n%s--- w8:\n%s", seq, par)
	}
}

// TestCLISimMetrics: the -metrics flag emits the observability snapshot
// in all three formats, the table's fleet section is byte-identical
// across worker counts (the CLI witness of the metrics determinism
// contract), and an unknown format fails.
func TestCLISimMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	args := []string{"./cmd/braidio-sim", "-fleet", "4", "-members", "2", "-horizon", "900", "-rounds", "3", "-metrics"}
	table := runCLI(t, append(args, "table", "-workers", "1")...)
	for _, want := range []string{"== Metrics ==", "Mode occupancy", "TX:RX drain ratio", "braid runs", "quarantines"} {
		if !strings.Contains(table, want) {
			t.Errorf("-metrics table missing %q:\n%s", want, table)
		}
	}
	// The table must be byte-identical across worker counts except the
	// link-cache lines: the cache is process-global and its hit/miss
	// split depends on shard interleaving (the same sections
	// Snapshot.Canonical projects out).
	stripCache := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.Contains(line, "cache") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	if par := runCLI(t, append(args, "table", "-workers", "8")...); stripCache(par) != stripCache(table) {
		t.Errorf("-metrics table differs between -workers 1 and 8:\n--- w1:\n%s--- w8:\n%s", table, par)
	}
	if out := runCLI(t, append(args, "json")...); !strings.Contains(out, `"BraidRuns": 24`) {
		t.Errorf("-metrics json missing braid-run count:\n%s", out)
	}
	if out := runCLI(t, append(args, "prom")...); !strings.Contains(out, "braidio_braid_runs_total 24") ||
		!strings.Contains(out, "braidio_energy_per_bit_joules_bucket") {
		t.Errorf("-metrics prom missing expected families:\n%s", out)
	}
	cmd := exec.Command("go", "run", "./cmd/braidio-sim", "-metrics", "bogus")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("-metrics bogus should fail, got:\n%s", out)
	}
}

// TestCLIBenchDiff: a record diffed against itself reports zero
// regressions and exits 0.
func TestCLIBenchDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "./cmd/braidio-bench", "-benchdiff", "BENCH_pr3.json", "BENCH_pr3.json")
	if !strings.Contains(out, "0 regressed") {
		t.Errorf("self-diff reported regressions:\n%s", out)
	}
}

func TestCLIExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, ex := range []struct{ path, want string }{
		{"./examples/quickstart", "planned mode mix"},
		{"./examples/wearable-sync", "improvement"},
		{"./examples/camera-stream", "gain over Bluetooth"},
		{"./examples/regime-explorer", "Regime"},
		{"./examples/body-hub", "hub radio bill"},
		{"./examples/qos-stream", "300 kbps floor"},
	} {
		out := runCLI(t, ex.path)
		if !strings.Contains(out, ex.want) {
			t.Errorf("%s output missing %q:\n%s", ex.path, ex.want, out)
		}
	}
}
