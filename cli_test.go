package braidio

// CLI smoke tests: build and run each command the repository ships,
// asserting their headline output. Guarded by -short since each run
// compiles a binary.

import (
	"os/exec"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIBenchList(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "./cmd/braidio-bench", "-list")
	for _, want := range []string{"fig15", "table5", "ext-harvest", "ablation-solver"} {
		if !strings.Contains(out, want) {
			t.Errorf("bench -list missing %q", want)
		}
	}
}

func TestCLIBenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "./cmd/braidio-bench", "-exp", "fig9")
	if !strings.Contains(out, "1:2546") || !strings.Contains(out, "3546:1") {
		t.Errorf("fig9 report missing the headline ratios:\n%s", out)
	}
}

func TestCLISim(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "./cmd/braidio-sim", "-tx", "Nike Fuel Band", "-rx", "MacBook Pro 15", "-d", "0.5")
	if !strings.Contains(out, "gain vs Bluetooth") {
		t.Errorf("sim output missing gain line:\n%s", out)
	}
	if !strings.Contains(out, "backscatter") {
		t.Errorf("sim output missing mode breakdown:\n%s", out)
	}
}

func TestCLILink(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "./cmd/braidio-link")
	for _, want := range []string{"Operational ranges", "Regime boundaries", "1.80 m", "2.40 m"} {
		if !strings.Contains(out, want) {
			t.Errorf("link output missing %q", want)
		}
	}
}

func TestCLIField(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "./cmd/braidio-field", "-grid", "11")
	if !strings.Contains(out, "worst case with diversity") {
		t.Errorf("field output missing diversity summary:\n%s", out)
	}
}

// TestCLISimFleet: the fleet mode prints the population summary, and
// the output is byte-identical across worker counts — the CLI-level
// witness of the engine's determinism contract.
func TestCLISimFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	args := []string{"./cmd/braidio-sim", "-fleet", "4", "-members", "2", "-horizon", "900", "-rounds", "3"}
	seq := runCLI(t, append(args, "-workers", "1")...)
	for _, want := range []string{"fleet bits delivered", "hubs exhausted: 0/4", "offload solves"} {
		if !strings.Contains(seq, want) {
			t.Errorf("fleet output missing %q:\n%s", want, seq)
		}
	}
	par := runCLI(t, append(args, "-workers", "8")...)
	if seq != par {
		t.Errorf("fleet output differs between -workers 1 and 8:\n--- w1:\n%s--- w8:\n%s", seq, par)
	}
}

// TestCLIBenchDiff: a record diffed against itself reports zero
// regressions and exits 0.
func TestCLIBenchDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runCLI(t, "./cmd/braidio-bench", "-benchdiff", "BENCH_pr3.json", "BENCH_pr3.json")
	if !strings.Contains(out, "0 regressed") {
		t.Errorf("self-diff reported regressions:\n%s", out)
	}
}

func TestCLIExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, ex := range []struct{ path, want string }{
		{"./examples/quickstart", "planned mode mix"},
		{"./examples/wearable-sync", "improvement"},
		{"./examples/camera-stream", "gain over Bluetooth"},
		{"./examples/regime-explorer", "Regime"},
		{"./examples/body-hub", "hub radio bill"},
		{"./examples/qos-stream", "300 kbps floor"},
	} {
		out := runCLI(t, ex.path)
		if !strings.Contains(out, ex.want) {
			t.Errorf("%s output missing %q:\n%s", ex.path, ex.want, out)
		}
	}
}
