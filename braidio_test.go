package braidio

import (
	"math"
	"testing"
)

func mustDevice(t *testing.T, name string) Device {
	t.Helper()
	d, ok := DeviceByName(name)
	if !ok {
		t.Fatalf("device %q missing from catalog", name)
	}
	return d
}

func TestDevicesCatalog(t *testing.T) {
	if len(Devices()) != 10 {
		t.Fatalf("catalog has %d devices, want 10", len(Devices()))
	}
	if _, ok := DeviceByName("Pebble Watch"); !ok {
		t.Error("Pebble Watch missing")
	}
}

func TestCustomDevice(t *testing.T) {
	d := CustomDevice("drone", 30)
	if d.Capacity != 30 || d.Name != "drone" {
		t.Errorf("custom device = %+v", d)
	}
	p := NewPair(d, mustDevice(t, "iPhone 6S"), 0.5)
	if _, err := p.Transfer(); err != nil {
		t.Fatal(err)
	}
}

func TestPairTransferEndToEnd(t *testing.T) {
	watch := mustDevice(t, "Apple Watch")
	phone := mustDevice(t, "iPhone 6S")
	p := NewPair(watch, phone, 0.5)

	if p.Regime() != RegimeA {
		t.Errorf("regime at 0.5 m = %v, want A", p.Regime())
	}
	if got := len(p.Links()); got != 3 {
		t.Errorf("links = %d, want 3", got)
	}

	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// Watch is the small battery and it transmits: backscatter should
	// dominate the plan.
	if plan.Fraction(ModeBackscatter) < 0.8 {
		t.Errorf("backscatter fraction = %v, want dominant", plan.Fraction(ModeBackscatter))
	}

	res, err := p.Transfer()
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits <= 0 {
		t.Fatal("no bits transferred")
	}
	// Power proportionality: drains in roughly the battery ratio.
	wantRatio := float64(watch.Capacity / phone.Capacity)
	gotRatio := float64(res.Drain1 / res.Drain2)
	if math.Abs(math.Log(gotRatio/wantRatio)) > 0.05 {
		t.Errorf("drain ratio %v, want ≈%v", gotRatio, wantRatio)
	}
}

func TestPairTransferBits(t *testing.T) {
	p := NewPair(mustDevice(t, "Apple Watch"), mustDevice(t, "iPhone 6S"), 0.5)
	res, err := p.TransferBits(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Bits-1e9)/1e9 > 0.01 {
		t.Errorf("bounded transfer moved %v bits, want ≈1e9", res.Bits)
	}
	// A second full Transfer is unaffected by the earlier bound.
	full, err := p.Transfer()
	if err != nil {
		t.Fatal(err)
	}
	if full.Bits <= res.Bits*10 {
		t.Errorf("full transfer %v bits suspiciously small", full.Bits)
	}
}

func TestPairResume(t *testing.T) {
	watch := mustDevice(t, "Apple Watch")
	phone := mustDevice(t, "iPhone 6S")
	p := NewPair(watch, phone, 0.5)
	b1 := watch.NewBattery()
	b2 := phone.NewBattery()
	b1.Drain(b1.Capacity() / 2)
	res, err := p.Resume(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if !b1.Empty() && !b2.Empty() {
		t.Error("resume did not run to exhaustion")
	}
	if res.Bits <= 0 {
		t.Error("no bits on resume")
	}
}

func TestPairGains(t *testing.T) {
	fuel := mustDevice(t, "Nike Fuel Band")
	mbp := mustDevice(t, "MacBook Pro 15")
	p := NewPair(fuel, mbp, 0.5)
	g, err := p.GainVsBluetooth()
	if err != nil {
		t.Fatal(err)
	}
	if g < 300 {
		t.Errorf("corner gain vs Bluetooth = %v, want hundreds", g)
	}
	gb, err := p.GainVsBestMode()
	if err != nil {
		t.Fatal(err)
	}
	if gb < 0.99 || gb > 1.1 {
		t.Errorf("corner gain vs best mode = %v, want ≈1", gb)
	}
}

func TestWithModelOption(t *testing.T) {
	m := NewModel()
	m.FadeMargin = 6
	p := NewPair(mustDevice(t, "Apple Watch"), mustDevice(t, "iPhone 6S"), 2.2, WithModel(m))
	// 6 dB of fading shrinks the round-trip backscatter range by
	// 10^(6/40) ≈ 1.4× (2.4 m → 1.7 m), killing it at 2.2 m, while the
	// one-way passive link (5.1 m → 2.55 m) survives.
	if p.Regime() != RegimeB {
		t.Errorf("faded regime at 2.2 m = %v, want B", p.Regime())
	}
	if NewPair(mustDevice(t, "Apple Watch"), mustDevice(t, "iPhone 6S"), 2.2).Regime() != RegimeA {
		t.Error("unfaded regime at 2.2 m should be A")
	}
}

func TestWithoutSwitchOverheadOption(t *testing.T) {
	watch := mustDevice(t, "Apple Watch")
	with := NewPair(watch, watch, 0.5)
	without := NewPair(watch, watch, 0.5, WithoutSwitchOverhead())
	rw, err := with.Transfer()
	if err != nil {
		t.Fatal(err)
	}
	ro, err := without.Transfer()
	if err != nil {
		t.Fatal(err)
	}
	if ro.SwitchEnergy1 != 0 {
		t.Error("switch energy recorded with overhead disabled")
	}
	if ro.Bits < rw.Bits {
		t.Error("disabling overhead reduced throughput")
	}
}

func TestPairSession(t *testing.T) {
	p := NewPair(mustDevice(t, "Apple Watch"), mustDevice(t, "iPhone 6S"), 0.5)
	s, err := p.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.SendFrame(200); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().FramesDelivered != 100 {
		t.Errorf("delivered %d frames, want 100", s.Stats().FramesDelivered)
	}
}

func TestBluetoothBaselineExported(t *testing.T) {
	b := BluetoothBaseline()
	if b.PowerRatio() != 1 {
		t.Errorf("baseline power ratio = %v, want symmetric", b.PowerRatio())
	}
}

func TestGainMatrixSmall(t *testing.T) {
	devs := []Device{mustDevice(t, "Apple Watch"), mustDevice(t, "iPhone 6S")}
	m, err := GainMatrix(0.5, devs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 2 || len(m.Cells[0]) != 2 {
		t.Fatalf("matrix shape wrong: %v", m.Cells)
	}
	diag := m.Diagonal()
	for _, g := range diag {
		if math.Abs(g-1.43) > 0.08 {
			t.Errorf("diagonal gain %v, want ≈1.43", g)
		}
	}
	bm, err := GainMatrixBestMode(0.5, devs)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Max() > 2 {
		t.Errorf("best-mode matrix max %v, want bounded by ~1.8", bm.Max())
	}
	bi, err := GainMatrixBidirectional(0.5, devs)
	if err != nil {
		t.Fatal(err)
	}
	if bi.Max() < 1 {
		t.Errorf("bidirectional matrix max %v", bi.Max())
	}
}

func TestPairPlanQoS(t *testing.T) {
	band := mustDevice(t, "Nike Fuel Band")
	phone := mustDevice(t, "iPhone 6S")
	p := NewPair(band, phone, 2.0)
	plain, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	qos, err := p.PlanQoS(300_000)
	if err != nil {
		t.Fatal(err)
	}
	if qos.Throughput() < 300_000*0.999 {
		t.Errorf("QoS throughput = %v, want ≥300 kbps", qos.Throughput())
	}
	if qos.Bits > plain.Bits {
		t.Error("rate floor should not increase delivered bits")
	}
}

func TestPairModelAccessorAndNilCatalog(t *testing.T) {
	watch := mustDevice(t, "Apple Watch")
	p := NewPair(watch, watch, 0.5)
	if p.Model() == nil {
		t.Fatal("nil model")
	}
	if p.Model().Regime(0.5) != RegimeA {
		t.Error("model accessor returned the wrong model")
	}
}

func TestPairDuplex(t *testing.T) {
	watch := mustDevice(t, "Apple Watch")
	phone := mustDevice(t, "iPhone 6S")
	d, err := NewPair(watch, phone, 0.5).NewDuplex(3)
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.Exchange(200)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("exchange delivered %d of 2", n)
	}
	a, b := d.Drains()
	if a <= 0 || b <= 0 {
		t.Error("no drains after an exchange")
	}
}

func TestGainErrorsOutOfRange(t *testing.T) {
	watch := mustDevice(t, "Apple Watch")
	p := NewPair(watch, watch, 5000)
	if _, err := p.GainVsBluetooth(); err == nil {
		t.Error("out-of-range gain should error")
	}
	if _, err := p.GainVsBestMode(); err == nil {
		t.Error("out-of-range best-mode gain should error")
	}
	if _, err := GainMatrix(5000, []Device{watch}); err == nil {
		t.Error("out-of-range matrix should error")
	}
}
