package braidio

// doccheck_test walks the module's source and fails if any exported
// declaration lacks a doc comment — the documentation contract README
// promises ("doc comments on every public item"), enforced.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestEveryExportedItemIsDocumented(t *testing.T) {
	var missing []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc.Text() == "" {
					missing = append(missing, loc(path, fset, dd.Pos(), "func "+dd.Name.Name))
				}
			case *ast.GenDecl:
				groupDoc := dd.Doc.Text() != ""
				for _, spec := range dd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && !groupDoc && sp.Doc.Text() == "" {
							missing = append(missing, loc(path, fset, sp.Pos(), "type "+sp.Name.Name))
						}
						// Struct fields: exported fields need docs or a
						// line comment.
						if st, ok := sp.Type.(*ast.StructType); ok {
							for _, f := range st.Fields.List {
								for _, n := range f.Names {
									if n.IsExported() && f.Doc.Text() == "" && f.Comment.Text() == "" {
										missing = append(missing, loc(path, fset, n.Pos(), "field "+sp.Name.Name+"."+n.Name))
									}
								}
							}
						}
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if n.IsExported() && !groupDoc && sp.Doc.Text() == "" && sp.Comment.Text() == "" {
								missing = append(missing, loc(path, fset, n.Pos(), "value "+n.Name))
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Error(m)
	}
	if len(missing) > 0 {
		t.Logf("%d exported items missing documentation", len(missing))
	}
}

func loc(path string, fset *token.FileSet, pos token.Pos, what string) string {
	p := fset.Position(pos)
	return path + ":" + strconv.Itoa(p.Line) + ": undocumented " + what
}
