# Braidio build and reproduction targets. Stdlib-only Go; everything runs
# offline.

GO ?= go

.PHONY: all build test vet race fuzz bench bench-smoke repro csv examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Default test gate: vet everything, run the full suite, then re-run the
# concurrency-sensitive internal packages under the race detector.
test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/...

race:
	$(GO) test -race ./...

# Short fuzz passes over the frame codec and the line-coding round trip
# (extend -fuzztime for deeper runs).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=10s ./internal/frame
	$(GO) test -run=NONE -fuzz=FuzzRoundTrip -fuzztime=10s ./internal/linecode

# Run the root benchmark suite (paper tables/figures plus the waveform
# engine and Monte Carlo sweeps), keep the raw text, and distill it into
# the machine-readable perf record BENCH_pr3.json.
bench:
	$(GO) test -run=NONE -bench=. -benchmem . | tee bench_output.txt
	$(GO) run ./cmd/braidio-bench -benchjson BENCH_pr3.json < bench_output.txt

# Quick compile-and-run smoke over every benchmark in the repo (one
# iteration each); CI runs this to keep benchmarks from bit-rotting.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Print every reproduced artifact to stdout.
repro:
	$(GO) run ./cmd/braidio-bench

# Write machine-readable CSVs for all artifacts to out/.
csv:
	$(GO) run ./cmd/braidio-bench -csv out/ > /dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/wearable-sync
	$(GO) run ./examples/camera-stream
	$(GO) run ./examples/regime-explorer
	$(GO) run ./examples/body-hub

clean:
	rm -rf out/ test_output.txt bench_output.txt
