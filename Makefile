# Braidio build and reproduction targets. Stdlib-only Go; everything runs
# offline.

GO ?= go

.PHONY: all build test vet race fuzz cover bench bench-smoke bench-diff repro csv examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Default test gate: vet everything, run the full suite, then re-run the
# concurrency-sensitive internal packages under the race detector.
test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/...

race:
	$(GO) test -race ./...

# Short fuzz passes over the frame codec, the line-coding round trip,
# and the network planner (extend -fuzztime for deeper runs). FuzzDecode
# covers arbitrary buffers; FuzzDecodeMutated covers single-mutation
# corruption of valid frames (bit flips and truncations at the
# validation boundaries); FuzzPlan covers adversarial topologies
# (NaN/infinite positions, negative loads, degenerate batteries) against
# net.Plan's typed-error contract.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecode$$ -fuzztime=10s ./internal/frame
	$(GO) test -run=NONE -fuzz=FuzzDecodeMutated -fuzztime=10s ./internal/frame
	$(GO) test -run=NONE -fuzz=FuzzRoundTrip -fuzztime=10s ./internal/linecode
	$(GO) test -run=NONE -fuzz=FuzzPlan -fuzztime=10s ./internal/net

# Coverage floors for the paper-critical packages (offload solver, hub
# engine, MAC, network scheduler). Set a few points below current
# measurements (92.1 / 86.8 / 90.4 as of PR 5; 87.0 for net as of PR 10)
# so refactors have headroom but coverage cannot silently erode; raise
# the floors when coverage improves.
COVER_FLOOR_CORE ?= 90.0
COVER_FLOOR_HUB  ?= 84.0
COVER_FLOOR_MAC  ?= 88.0
COVER_FLOOR_NET  ?= 85.0

cover:
	@set -e; \
	for spec in core:$(COVER_FLOOR_CORE) hub:$(COVER_FLOOR_HUB) mac:$(COVER_FLOOR_MAC) net:$(COVER_FLOOR_NET); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		out=$$($(GO) test -count=1 -coverprofile=cover_$$pkg.out ./internal/$$pkg); \
		echo "$$out"; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		awk -v pkg="$$pkg" -v pct="$$pct" -v floor="$$floor" 'BEGIN { \
			if (pct == "" || pct + 0 < floor + 0) { \
				printf "FAIL: internal/%s coverage %s%% below floor %s%%\n", pkg, pct, floor; exit 1 \
			} \
			printf "ok: internal/%s coverage %s%% >= floor %s%%\n", pkg, pct, floor }'; \
	done

# Run the benchmark suite (paper tables/figures, the waveform engine and
# Monte Carlo sweeps, the hub/fleet engine, the serve epoch/contention
# benchmarks, plus the network scheduler), keep the raw text, and
# distill it into the machine-readable perf record BENCH_pr10.json.
bench:
	$(GO) test -run=NONE -bench=. -benchmem . ./internal/hub ./internal/serve ./internal/net | tee bench_output.txt
	$(GO) run ./cmd/braidio-bench -benchjson BENCH_pr10.json < bench_output.txt

# Quick compile-and-run smoke over every benchmark in the repo (one
# iteration each); CI runs this to keep benchmarks from bit-rotting.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Regression gate: re-run the root suite briefly and diff it against the
# committed baseline record. The threshold is generous (+200%) because
# CI runners vary widely in clock speed — this catches algorithmic
# regressions (work or allocations growing by integer factors), not
# single-digit-percent noise. benchtime is time-based, not -Nx: a fixed
# iteration count under-amortizes warm-up for sub-microsecond benchmarks
# and false-positives the gate.
bench-diff:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=100ms . ./internal/hub ./internal/serve ./internal/net > bench_diff_output.txt
	$(GO) run ./cmd/braidio-bench -benchjson bench_new.json < bench_diff_output.txt
	$(GO) run ./cmd/braidio-bench -benchdiff BENCH_pr10.json -threshold 2.0 bench_new.json

# Print every reproduced artifact to stdout.
repro:
	$(GO) run ./cmd/braidio-bench

# Write machine-readable CSVs for all artifacts to out/.
csv:
	$(GO) run ./cmd/braidio-bench -csv out/ > /dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/wearable-sync
	$(GO) run ./examples/camera-stream
	$(GO) run ./examples/regime-explorer
	$(GO) run ./examples/body-hub

clean:
	rm -rf out/ test_output.txt bench_output.txt bench_diff_output.txt bench_new.json cover_*.out
