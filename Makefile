# Braidio build and reproduction targets. Stdlib-only Go; everything runs
# offline.

GO ?= go

.PHONY: all build test vet race fuzz bench repro csv examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Default test gate: vet everything, run the full suite, then re-run the
# concurrency-sensitive internal packages under the race detector.
test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/...

race:
	$(GO) test -race ./...

# Short fuzz pass over the frame codec (extend -fuzztime for deeper runs).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=10s ./internal/frame

# Regenerate every table and figure as testing.B benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Print every reproduced artifact to stdout.
repro:
	$(GO) run ./cmd/braidio-bench

# Write machine-readable CSVs for all artifacts to out/.
csv:
	$(GO) run ./cmd/braidio-bench -csv out/ > /dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/wearable-sync
	$(GO) run ./examples/camera-stream
	$(GO) run ./examples/regime-explorer
	$(GO) run ./examples/body-hub

clean:
	rm -rf out/ test_output.txt bench_output.txt
