module braidio

go 1.22
