package braidio

import (
	"braidio/internal/baseline"
	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/faults"
	"braidio/internal/hub"
	"braidio/internal/mac"
	"braidio/internal/obs"
	"braidio/internal/phy"
	"braidio/internal/rng"
	"braidio/internal/sim"
	"braidio/internal/units"
)

// Core types, aliased from the implementation packages so users of this
// package never need an internal import path.
type (
	// Mode is one of Braidio's three operating modes.
	Mode = phy.Mode
	// Regime is an operating regime of Fig. 8 (which modes reach).
	Regime = phy.Regime
	// Model is the calibrated link-level channel model.
	Model = phy.Model
	// Link characterizes one mode at a distance: rate, BER, goodput,
	// and per-bit costs at both endpoints.
	Link = phy.ModeLink
	// Allocation is a carrier-offload solution: the fraction of traffic
	// per mode.
	Allocation = core.Allocation
	// Result summarizes a braid run: bits moved, drains, mode mix,
	// switches.
	Result = core.Result
	// Device is a catalog entry (name and battery capacity).
	Device = energy.Device
	// Battery is a drainable energy budget.
	Battery = energy.Battery
	// Matrix is a device×device gain matrix (Figs. 15–17).
	Matrix = sim.Matrix
	// Session is the packet-level braided MAC session.
	Session = mac.Session
	// SessionConfig parameterizes a Session.
	SessionConfig = mac.Config
	// Bluetooth is the Table 1 baseline radio model.
	Bluetooth = baseline.Bluetooth

	// Meter is a distance in meters.
	Meter = units.Meter
	// Watt is a power in watts.
	Watt = units.Watt
	// Joule is an energy in joules.
	Joule = units.Joule
	// WattHour is a battery capacity unit.
	WattHour = units.WattHour
	// BitRate is a link speed in bits/second.
	BitRate = units.BitRate
	// Second is a wall-clock duration in seconds.
	Second = units.Second
)

// The three operating modes, named after the receiver state.
const (
	// ModeActive runs a carrier at both ends.
	ModeActive = phy.ModeActive
	// ModePassive runs the carrier at the transmitter only.
	ModePassive = phy.ModePassive
	// ModeBackscatter runs the carrier at the receiver only.
	ModeBackscatter = phy.ModeBackscatter
)

// The operating regimes of Fig. 8.
const (
	// RegimeA has all three links available.
	RegimeA = phy.RegimeA
	// RegimeB has lost backscatter.
	RegimeB = phy.RegimeB
	// RegimeC has only the active link.
	RegimeC = phy.RegimeC
	// OutOfRange has no usable link.
	OutOfRange = phy.OutOfRange
)

// Calibrated bitrates of the prototype links.
const (
	Rate1M   = units.Rate1M
	Rate100k = units.Rate100k
	Rate10k  = units.Rate10k
)

// NewModel returns the calibrated PHY model of two Braidio boards in
// free space — the paper's cleared-room setting.
func NewModel() *Model { return phy.NewModel() }

// Devices returns the Fig. 1 device catalog (ten devices from the Nike
// Fuel Band to the MacBook Pro 15), ordered by battery capacity.
func Devices() []Device { return energy.Catalog }

// DeviceByName looks up a catalog device.
func DeviceByName(name string) (Device, bool) { return energy.DeviceByName(name) }

// CustomDevice builds a device with an arbitrary battery capacity for
// scenarios beyond the catalog.
func CustomDevice(name string, capacity WattHour) Device {
	return Device{Name: name, Capacity: capacity, Class: "custom"}
}

// BluetoothBaseline returns the Bluetooth radio the evaluation compares
// against.
func BluetoothBaseline() Bluetooth { return baseline.Default }

// Fault-injection types, aliased from internal/faults: deterministic,
// seed-driven channel impairments that compose through FaultChain and
// plug into packet-level sessions (WithSessionFaults) and hub members
// (HubMember.Faults). With no injector configured every code path is
// bit-identical to a fault-free build.
type (
	// FaultInjector is one composable channel impairment.
	FaultInjector = faults.Injector
	// FaultChain applies injectors in order.
	FaultChain = faults.Chain
	// FaultEnv is the per-frame-attempt channel context injectors
	// transform.
	FaultEnv = faults.Env
	// GilbertElliott is the two-state Markov burst-loss channel.
	GilbertElliott = faults.GilbertElliott
	// Jammer is a periodic interference burst crushing SNR.
	Jammer = faults.Jammer
	// CarrierDropout is a periodic total carrier loss.
	CarrierDropout = faults.Dropout
	// Brownout is a periodic harvesting interruption scaling battery
	// drain on one side.
	Brownout = faults.Brownout
	// SNRCorruptor biases/noises every SNR observation.
	SNRCorruptor = faults.SNRCorruptor
	// Walk is a mobility trace: separation over time.
	Walk = sim.Walk
	// StaticWalk is a constant separation.
	StaticWalk = sim.StaticWalk
	// LinearWalk moves between two separations over a duration.
	LinearWalk = sim.LinearWalk
)

// NewGilbertElliott builds a deterministic burst-loss channel (see
// faults.NewGilbertElliott).
func NewGilbertElliott(pEnter, pExit, goodLoss, badLoss float64, seed uint64) *GilbertElliott {
	return faults.NewGilbertElliott(pEnter, pExit, goodLoss, badLoss, seed)
}

// NewSNRCorruptor builds a deterministic SNR-estimate corruptor (see
// faults.NewSNRCorruptor).
func NewSNRCorruptor(bias, sigma float64, seed uint64) *SNRCorruptor {
	return faults.NewSNRCorruptor(bias, sigma, seed)
}

// Typed resilience errors, re-exported so callers can errors.Is against
// them without internal imports.
var (
	// ErrLinkDead reports a link that stayed down through the MAC's
	// bounded recovery attempts.
	ErrLinkDead = core.ErrLinkDead
	// ErrMemberQuarantined reports a hub member removed from the
	// round-robin after repeated failed rounds.
	ErrMemberQuarantined = hub.ErrMemberQuarantined
	// ErrSessionExhausted reports a SendFrame on a session whose
	// battery already died.
	ErrSessionExhausted = mac.ErrExhausted
)

// Pair is the high-level API: two devices at a distance, ready to
// transfer data through the braided radio.
type Pair struct {
	// TX transmits to RX.
	TX, RX Device
	// Distance separates them.
	Distance Meter

	model *Model
	// braid holds the pair's braid configuration. Runs operate on a
	// per-call copy so concurrent transfers on one Pair never share
	// mutable engine state.
	braid *core.Braid
	// walk and sessionFaults configure packet-level sessions opened on
	// this pair.
	walk          mac.Walk
	sessionFaults faults.Injector
	// metrics is the recorder WithMetrics attached (nil = process
	// default), carried into sessions opened on this pair.
	metrics *obs.Recorder
}

// Option customizes a Pair.
type Option func(*Pair)

// WithModel substitutes a custom channel model (e.g. with a fade margin
// or ARQ loss accounting).
func WithModel(m *Model) Option {
	return func(p *Pair) { p.model = m }
}

// WithoutSwitchOverhead disables Table 5 mode-switch energy accounting.
func WithoutSwitchOverhead() Option {
	return func(p *Pair) { p.braid.IncludeSwitchOverhead = false }
}

// WithAllocationTolerance sets the relative battery-ratio drift the braid
// tolerates before re-solving the carrier-offload allocation — §4.2's
// "periodically re-computes" made explicit. Zero (the default) re-solves
// whenever the ratio moves at all, keeping results bit-identical to an
// unmemoized run; a small positive value (e.g. 0.01) trades precision
// for fewer solver invocations on long transfers.
func WithAllocationTolerance(tol float64) Option {
	return func(p *Pair) { p.braid.AllocationTolerance = tol }
}

// WithWalk drives packet-level sessions opened on this pair with a
// mobility trace: the session re-reads the walk at probe/recompute
// boundaries so BER and FER track live distance instead of the initial
// separation.
func WithWalk(w Walk) Option {
	return func(p *Pair) { p.walk = w }
}

// WithSessionFaults injects a deterministic fault chain (burst loss,
// jamming, dropouts, brownouts, estimator corruption) into packet-level
// sessions opened on this pair. Injectors are stateful: use a fresh
// chain per pair.
func WithSessionFaults(inj FaultInjector) Option {
	return func(p *Pair) { p.sessionFaults = inj }
}

// WithoutLinkCache bypasses the process-global PHY characterization memo
// for this pair's braid. The cache is exact (keyed on the full model
// value and distance), so this exists for benchmarking and debugging,
// not correctness.
func WithoutLinkCache() Option {
	return func(p *Pair) { p.braid.DisableLinkCache = true }
}

// NewPair creates a transfer pair. The zero configuration uses the
// calibrated free-space model with switch overheads on.
func NewPair(tx, rx Device, d Meter, opts ...Option) *Pair {
	model := phy.NewModel()
	p := &Pair{TX: tx, RX: rx, Distance: d, model: model, braid: core.NewBraid(model, d)}
	for _, o := range opts {
		o(p)
	}
	p.braid.Model = p.model
	p.braid.Distance = p.Distance
	return p
}

// Model returns the pair's channel model.
func (p *Pair) Model() *Model { return p.model }

// Regime reports which operating regime the pair sits in.
func (p *Pair) Regime() Regime { return p.model.Regime(p.Distance) }

// Links characterizes the modes available to the pair.
func (p *Pair) Links() []Link { return p.model.Characterize(p.Distance) }

// Plan returns the carrier-offload allocation for the pair's full
// batteries without running a transfer.
func (p *Pair) Plan() (*Allocation, error) {
	return core.Optimize(p.Links(), p.TX.Capacity.Joules(), p.RX.Capacity.Joules())
}

// Transfer streams data from TX to RX, both starting with full
// batteries, until one dies. It returns the braid result. Transfers run
// on a copy of the pair's braid configuration, so concurrent calls on
// one Pair are safe.
func (p *Pair) Transfer() (*Result, error) {
	br := *p.braid
	br.MaxBits = 0
	return br.RunFresh(p.TX.Capacity, p.RX.Capacity)
}

// TransferBits moves a bounded number of payload bits (or less, if a
// battery dies first) between full batteries. Safe to call concurrently
// with other transfers on the same Pair.
func (p *Pair) TransferBits(bits float64) (*Result, error) {
	br := *p.braid
	br.MaxBits = bits
	return br.RunFresh(p.TX.Capacity, p.RX.Capacity)
}

// Resume continues a transfer over existing (partially drained)
// batteries, draining them further. Concurrent Resume calls must use
// distinct batteries — the batteries themselves are mutated.
func (p *Pair) Resume(txBatt, rxBatt *Battery) (*Result, error) {
	br := *p.braid
	br.MaxBits = 0
	return br.Run(txBatt, rxBatt)
}

// GainVsBluetooth runs the pair and reports the total-bits gain over the
// Bluetooth baseline — one cell of Fig. 15.
func (p *Pair) GainVsBluetooth() (float64, error) {
	r, err := sim.RunPair(p.model, p.Distance, p.TX, p.RX)
	if err != nil {
		return 0, err
	}
	return r.GainVsBluetooth(), nil
}

// GainVsBestMode runs the pair and reports the gain over the best single
// mode used exclusively — one cell of Fig. 16.
func (p *Pair) GainVsBestMode() (float64, error) {
	r, err := sim.RunPair(p.model, p.Distance, p.TX, p.RX)
	if err != nil {
		return 0, err
	}
	return r.GainVsBestMode(), nil
}

// NewSession opens a packet-level braided MAC session for the pair with
// fresh batteries: frame-by-frame transfer with probing, loss,
// retransmission, and fallback. The seed drives the stochastic channel;
// WithWalk and WithSessionFaults options on the pair carry over.
func (p *Pair) NewSession(seed uint64) (*Session, error) {
	cfg := mac.DefaultConfig(p.model, p.Distance, seed)
	cfg.Walk = p.walk
	cfg.Faults = p.sessionFaults
	cfg.Obs = p.metrics
	return mac.NewSession(cfg, energy.NewBattery(p.TX.Capacity), energy.NewBattery(p.RX.Capacity))
}

// GainMatrix computes the Fig. 15 matrix — Braidio over Bluetooth for
// every transmitter/receiver combination of the given devices (the
// catalog, if nil) at the given distance.
func GainMatrix(d Meter, devices []Device) (*Matrix, error) {
	if devices == nil {
		devices = energy.Catalog
	}
	return sim.GainMatrixBluetooth(phy.NewModel(), d, devices)
}

// GainMatrixBestMode computes the Fig. 16 matrix — Braidio over the best
// of its own modes in isolation.
func GainMatrixBestMode(d Meter, devices []Device) (*Matrix, error) {
	if devices == nil {
		devices = energy.Catalog
	}
	return sim.GainMatrixBestMode(phy.NewModel(), d, devices)
}

// GainMatrixBidirectional computes the Fig. 17 matrix — role-swapping
// traffic with equal data both ways.
func GainMatrixBidirectional(d Meter, devices []Device) (*Matrix, error) {
	if devices == nil {
		devices = energy.Catalog
	}
	return sim.GainMatrixBidirectional(phy.NewModel(), d, devices)
}

// Hub types: the multi-device star network extension (one energy-rich
// hub serving several wearables over braided pairs).
type (
	// Hub is a star network of braided pairs sharing the hub's battery.
	Hub = hub.Hub
	// HubMember is one wearable served by a Hub.
	HubMember = hub.Member
	// HubResult is the outcome of a Hub run.
	HubResult = hub.Result
	// HubMemberResult is one member's share of a Hub run, including any
	// quarantine verdict.
	HubMemberResult = hub.MemberResult
)

// NewHub creates a star network centred on the given device using the
// calibrated channel model.
func NewHub(device Device) *Hub { return hub.New(device, nil) }

// Fleet-scale simulation: populations of independent hub stars run
// concurrently with per-shard deterministic random streams.
type (
	// Fleet is a population of independent hub stars simulated over one
	// worker pool; results are bit-identical at any worker count.
	Fleet = hub.Fleet
	// FleetResult aggregates a fleet run (per-shard results plus
	// population totals).
	FleetResult = hub.FleetResult
	// HubBuilder constructs one fleet shard's hub from the shard index
	// and the shard's private random stream.
	HubBuilder = hub.Builder
	// RNG is a deterministic random stream (xoshiro256**); fleet shard
	// builders draw every randomized member parameter from theirs.
	RNG = rng.Stream
)

// RunFleet simulates n independent hub shards built by build, each for
// the horizon split into rounds, over a GOMAXPROCS-bounded worker pool
// with per-shard substreams carved from seed.
func RunFleet(n int, seed uint64, build HubBuilder, horizon Second, rounds int) (*FleetResult, error) {
	return hub.RunFleet(n, seed, build, horizon, rounds)
}

// Duplex is the packet-level bidirectional session (two Sessions wired
// crosswise over shared batteries).
type Duplex = mac.Duplex

// NewDuplex opens a bidirectional packet-level session between the
// pair's devices with fresh batteries. A WithWalk option carries over to
// both directions; session faults do not (injectors are stateful and
// cannot be shared between the two directions' sessions).
func (p *Pair) NewDuplex(seed uint64) (*Duplex, error) {
	cfg := mac.DefaultConfig(p.model, p.Distance, seed)
	cfg.Walk = p.walk
	cfg.Obs = p.metrics
	return mac.NewDuplex(cfg, energy.NewBattery(p.TX.Capacity), energy.NewBattery(p.RX.Capacity))
}

// PlanQoS returns the carrier-offload allocation with a minimum
// delivered-throughput floor (the QoS extension of Eq. 1): a real-time
// source that needs at least minRate cannot absorb slow backscatter
// slots, so the braid sheds them at the price of power proportionality.
func (p *Pair) PlanQoS(minRate BitRate) (*Allocation, error) {
	return core.OptimizeQoS(p.Links(), p.TX.Capacity.Joules(), p.RX.Capacity.Joules(), minRate)
}

// Observability: the zero-allocation metrics and tracing layer
// (internal/obs) re-exported. Attach a MetricsRecorder to a Pair, Hub,
// or Fleet (or install a process default with SetDefaultMetrics) and
// read a MetricsSnapshot after the run; attaching a recorder never
// changes any result, and Canonical snapshots are bit-identical at any
// worker count.
type (
	// MetricsRecorder is the concurrent-safe metric set engines report
	// into: counters, fixed-point float series, and histograms.
	MetricsRecorder = obs.Recorder
	// MetricsSnapshot is a recorder's frozen state, with table / JSON /
	// Prometheus writers and derived accessors (mode fractions,
	// energy per bit).
	MetricsSnapshot = obs.Snapshot
	// MetricsTracer is a bounded ring buffer of engine events
	// (mode switches, fallbacks, replans, quarantines, hub deaths).
	MetricsTracer = obs.Tracer
	// TraceEvent is one traced engine event.
	TraceEvent = obs.Event
)

// NewMetricsRecorder returns a ready MetricsRecorder with the standard
// bucket layouts.
func NewMetricsRecorder() *MetricsRecorder { return obs.NewRecorder() }

// NewMetricsTracer returns a MetricsTracer retaining the last capacity
// events (a default capacity when non-positive). Assign it to a
// recorder's Tracer field to capture event timelines.
func NewMetricsTracer(capacity int) *MetricsTracer { return obs.NewTracer(capacity) }

// SetDefaultMetrics installs (or, with nil, removes) the process-global
// default recorder: engines without an explicitly attached recorder
// report there. WithMetrics takes precedence per pair.
func SetDefaultMetrics(r *MetricsRecorder) { obs.SetDefault(r) }

// WithMetrics attaches a metrics recorder to the pair: transfers and
// sessions opened on it report run totals, mode occupancy, solver and
// fallback activity into r. Results are unchanged; one recorder may be
// shared by many pairs.
func WithMetrics(r *MetricsRecorder) Option {
	return func(p *Pair) {
		p.braid.Obs = r
		p.metrics = r
	}
}
